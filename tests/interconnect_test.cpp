// Link-topology interconnect regressions: under InterconnectModel::kLink a
// directed socket link has finite bandwidth, so back-to-back cross-socket
// messages queue behind each other, while intra-socket traffic (and the
// whole kFlat model) is unaffected.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/interconnect.hpp"

namespace sbq::sim {
namespace {

MachineConfig link_cfg() {
  MachineConfig cfg;
  cfg.cores = 4;
  cfg.sockets = 2;  // cores 0-1 on socket 0, cores 2-3 on socket 1
  cfg.interconnect_model = InterconnectModel::kLink;
  return cfg;
}

Message probe(Addr a) { return Message{MsgType::kData, a, 0, 0, 0, 0}; }

TEST(InterconnectLink, UncontendedLatencyIncludesOccupancy) {
  const MachineConfig cfg = link_cfg();
  Engine e;
  Interconnect net(e, cfg, nullptr);
  EXPECT_EQ(net.latency(0, 1), cfg.intra_latency);
  EXPECT_EQ(net.latency(0, 2), cfg.inter_latency + cfg.link_occupancy);
  EXPECT_EQ(net.latency(2, net.directory_id()),
            cfg.inter_latency + cfg.link_occupancy);
}

TEST(InterconnectLink, BackToBackCrossSocketMessagesQueue) {
  const MachineConfig cfg = link_cfg();
  Engine e;
  Interconnect net(e, cfg, nullptr);
  std::vector<std::pair<Time, Addr>> got;
  net.set_handler(2, [&](const Message& m) { got.emplace_back(e.now(), m.addr); });
  net.send(0, 2, probe(1));
  net.send(0, 2, probe(2));
  e.run();
  ASSERT_EQ(got.size(), 2u);
  // First message: link free, departs immediately, arrives after
  // occupancy + inter_latency.
  EXPECT_EQ(got[0], std::pair(cfg.link_occupancy + cfg.inter_latency, Addr{1}));
  // Second: finds the link busy for link_occupancy cycles and waits them
  // out in the FIFO before paying the same hop cost.
  EXPECT_EQ(got[1],
            std::pair(2 * cfg.link_occupancy + cfg.inter_latency, Addr{2}));
  EXPECT_EQ(net.link_messages(), 2u);
  EXPECT_EQ(net.link_wait_cycles(),
            static_cast<std::uint64_t>(cfg.link_occupancy));
}

TEST(InterconnectLink, IntraSocketMessagesDoNotQueue) {
  const MachineConfig cfg = link_cfg();
  Engine e;
  Interconnect net(e, cfg, nullptr);
  std::vector<Time> arrivals;
  net.set_handler(1, [&](const Message&) { arrivals.push_back(e.now()); });
  net.send(0, 1, probe(1));
  net.send(0, 1, probe(2));
  e.run();
  ASSERT_EQ(arrivals.size(), 2u);
  // Both arrive after the flat intra-socket latency: the on-chip mesh has
  // no occupancy queue.
  EXPECT_EQ(arrivals[0], cfg.intra_latency);
  EXPECT_EQ(arrivals[1], cfg.intra_latency);
  EXPECT_EQ(net.link_messages(), 0u);
  EXPECT_EQ(net.link_wait_cycles(), 0u);
}

TEST(InterconnectLink, DirectedLinksAreIndependent) {
  const MachineConfig cfg = link_cfg();
  Engine e;
  Interconnect net(e, cfg, nullptr);
  std::vector<Time> fwd, rev;
  net.set_handler(2, [&](const Message&) { fwd.push_back(e.now()); });
  net.set_handler(0, [&](const Message&) { rev.push_back(e.now()); });
  // Opposite directions at the same instant: neither queues behind the
  // other (one link per *directed* socket pair).
  net.send(0, 2, probe(1));
  net.send(2, 0, probe(2));
  e.run();
  const Time uncontended = cfg.link_occupancy + cfg.inter_latency;
  ASSERT_EQ(fwd.size(), 1u);
  ASSERT_EQ(rev.size(), 1u);
  EXPECT_EQ(fwd[0], uncontended);
  EXPECT_EQ(rev[0], uncontended);
  EXPECT_EQ(net.link_wait_cycles(), 0u);
}

TEST(InterconnectLink, LinkFreesUpAfterIdleGap) {
  const MachineConfig cfg = link_cfg();
  Engine e;
  Interconnect net(e, cfg, nullptr);
  std::vector<Time> arrivals;
  net.set_handler(2, [&](const Message&) { arrivals.push_back(e.now()); });
  net.send(0, 2, probe(1));
  e.run();  // drain: link is idle again well past its busy horizon
  const Time t1 = e.now();
  ASSERT_GE(t1, cfg.link_occupancy);
  net.send(0, 2, probe(2));
  e.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[1] - t1, cfg.link_occupancy + cfg.inter_latency);
  EXPECT_EQ(net.link_wait_cycles(), 0u);
}

TEST(InterconnectFlat, CrossSocketHasNoOccupancyQueue) {
  MachineConfig cfg = link_cfg();
  cfg.interconnect_model = InterconnectModel::kFlat;
  Engine e;
  Interconnect net(e, cfg, nullptr);
  std::vector<Time> arrivals;
  net.set_handler(2, [&](const Message&) { arrivals.push_back(e.now()); });
  net.send(0, 2, probe(1));
  net.send(0, 2, probe(2));
  e.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], cfg.inter_latency);
  EXPECT_EQ(arrivals[1], cfg.inter_latency);
  EXPECT_EQ(net.link_messages(), 0u);
  EXPECT_EQ(net.link_wait_cycles(), 0u);
}

TEST(InterconnectLink, SaveRestoreRoundTripsBusyHorizon) {
  const MachineConfig cfg = link_cfg();
  Engine e;
  Interconnect net(e, cfg, nullptr);
  std::vector<Time> arrivals;
  net.set_handler(2, [&](const Message&) { arrivals.push_back(e.now()); });
  net.send(0, 2, probe(1));
  const Interconnect::State s = net.save_state();
  EXPECT_EQ(s.link_msgs, 1u);

  // Pile more traffic onto the link, then rewind its state: the replayed
  // send must observe the same busy horizon the checkpointed one did.
  net.send(0, 2, probe(2));
  net.send(0, 2, probe(3));
  const std::uint64_t piled_wait = net.link_wait_cycles();
  EXPECT_GT(piled_wait, 0u);
  net.restore_state(s);
  EXPECT_EQ(net.link_messages(), 1u);
  EXPECT_EQ(net.link_wait_cycles(), 0u);
  net.send(0, 2, probe(4));
  EXPECT_EQ(net.link_wait_cycles(),
            static_cast<std::uint64_t>(cfg.link_occupancy));
}

}  // namespace
}  // namespace sbq::sim
