// ContentionPolicy: cross-backend decision equivalence and unit semantics.
//
// The native TxCas loop (src/htm/txcas.hpp) and the sim's TxCasOp state
// machine (src/sim/core.cpp) both construct their retry policy from the
// same ContentionPolicy class. These tests pin that down:
//  * the two factory paths produce identical decision streams (step
//    verdicts and delay lengths) for every policy kind when given the same
//    knob values and the same abort-cause script;
//  * the divergent max_nonconflict_aborts defaults (sim 8, native 0) are
//    exactly the two documented named constants — they cannot drift again;
//  * each policy kind's semantics: fixed reproduces the constants,
//    adaptive-backoff walks the DHM ladder deterministically, and
//    adaptive-fallback spends its budget faster on non-conflict aborts.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/contention.hpp"
#include "htm/txcas.hpp"
#include "sim/types.hpp"

namespace sbq {
namespace {

// ---------------------------------------------------------------------------
// Satellite: the shared degradation default and the native override.
// ---------------------------------------------------------------------------

TEST(ContentionDefaults, SimUsesSharedNonconflictBudget) {
  const sim::TxCasConfig cfg;
  EXPECT_EQ(cfg.max_nonconflict_aborts,
            static_cast<int>(kDefaultNonconflictAbortBudget));
}

TEST(ContentionDefaults, NativeUsesDocumentedOverride) {
  const TxCasConfig cfg;
  EXPECT_EQ(cfg.max_nonconflict_aborts, kNativeNonconflictAbortOverride);
  // The override exists because the non-RTM htm:: facade reports every
  // abort as non-conflict; it must stay "degradation disabled".
  EXPECT_EQ(kNativeNonconflictAbortOverride, 0u);
}

TEST(ContentionDefaults, PolicyNamesRoundTrip) {
  for (int i = 0; i < kContentionPolicyKindCount; ++i) {
    const auto kind = static_cast<ContentionPolicyKind>(i);
    ContentionPolicyKind parsed;
    ASSERT_TRUE(contention_policy_from_name(contention_policy_name(kind),
                                            parsed));
    EXPECT_EQ(parsed, kind);
  }
  ContentionPolicyKind sink = ContentionPolicyKind::kFixed;
  EXPECT_FALSE(contention_policy_from_name("bogus", sink));
  EXPECT_FALSE(contention_policy_from_name("", sink));
  EXPECT_EQ(sink, ContentionPolicyKind::kFixed);  // junk leaves out alone
}

// ---------------------------------------------------------------------------
// Cross-backend differential: both factories, same knobs, same script,
// identical decisions.
// ---------------------------------------------------------------------------

// One recorded decision trace: the pre-attempt verdict sequence plus every
// delay the policy handed out.
struct Trace {
  std::vector<int> steps;
  std::vector<std::uint64_t> intra;
  std::vector<std::uint64_t> post;
  std::uint32_t attempts = 0;

  bool operator==(const Trace& o) const {
    return steps == o.steps && intra == o.intra && post == o.post &&
           attempts == o.attempts;
  }
};

// Drive one policy through a scripted abort sequence the way both backends
// do: ask next_step() before each attempt, take the intra delay, apply the
// scripted abort (post-abort delay after read conflicts), stop when the
// policy says fallback or the script ends in a commit.
Trace drive(ContentionPolicy policy, ContentionPolicy::State state,
            const std::vector<CasAbort>& aborts) {
  Trace t;
  policy.begin_call();
  std::size_t i = 0;
  for (;;) {
    const CasStep step = policy.next_step();
    t.steps.push_back(static_cast<int>(step));
    if (step != CasStep::kTxn) break;
    policy.note_attempt();
    t.intra.push_back(policy.intra_delay(state));
    if (i >= aborts.size()) {  // script exhausted: this attempt commits
      policy.on_commit(state);
      break;
    }
    const CasAbort a = aborts[i++];
    policy.on_abort(state, a);
    if (a == CasAbort::kReadConflict) {
      t.post.push_back(policy.post_abort_delay(state));
    }
  }
  t.attempts = policy.attempts();
  return t;
}

// Scripts covering the interesting shapes: pure conflict storms, pure
// non-conflict storms, and mixes that straddle the degradation bounds.
std::vector<std::vector<CasAbort>> scripts() {
  using A = CasAbort;
  std::vector<std::vector<CasAbort>> s;
  s.push_back({});                                      // first-try commit
  s.push_back({A::kReadConflict});                      // one §4.2 wait
  s.push_back({A::kWriteConflict, A::kReadConflict});   // tripped then wait
  s.push_back(std::vector<A>(10, A::kNonConflict));     // sick HTM
  s.push_back(std::vector<A>(70, A::kReadConflict));    // past max_attempts
  s.push_back(std::vector<A>(70, A::kWriteConflict));
  std::vector<A> mixed;
  for (int i = 0; i < 30; ++i) {
    mixed.push_back(i % 3 == 0 ? A::kNonConflict
                               : (i % 3 == 1 ? A::kReadConflict
                                             : A::kWriteConflict));
  }
  s.push_back(mixed);
  return s;
}

class CrossBackend : public ::testing::TestWithParam<int> {};

TEST_P(CrossBackend, NativeAndSimFactoriesDecideIdentically) {
  const auto kind = static_cast<ContentionPolicyKind>(GetParam());

  // Identical knob values through both config types.
  TxCasConfig native;
  native.intra_txn_delay = 675;
  native.post_abort_delay = 130;
  native.max_attempts = 64;
  native.max_nonconflict_aborts = kDefaultNonconflictAbortBudget;
  native.policy.kind = kind;
  native.policy.seed = 99;

  sim::TxCasConfig simc;
  simc.intra_txn_delay = 675;
  simc.post_abort_delay = 130;
  simc.max_attempts = 64;
  simc.max_nonconflict_aborts =
      static_cast<int>(kDefaultNonconflictAbortBudget);
  ContentionPolicyParams params;
  params.kind = kind;
  params.seed = 99;

  const ContentionPolicy a = TxCas<std::uint64_t>::make_policy(native);
  const ContentionPolicy b = sim::make_contention_policy(params, simc);
  // Same persistent history on both sides (stream 5, arbitrary).
  const ContentionPolicy::State s0 = ContentionPolicy::seeded_state(99, 5);

  for (const auto& script : scripts()) {
    EXPECT_EQ(drive(a, s0, script), drive(b, s0, script));
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, CrossBackend,
                         ::testing::Values(0, 1, 2),
                         [](const ::testing::TestParamInfo<int>& info) {
                           std::string name = contention_policy_name(
                               static_cast<ContentionPolicyKind>(info.param));
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Per-kind semantics.
// ---------------------------------------------------------------------------

ContentionPolicy make(ContentionPolicyKind kind,
                      std::uint32_t max_attempts = 64,
                      std::uint32_t max_nc = kDefaultNonconflictAbortBudget) {
  ContentionPolicyParams p;
  p.kind = kind;
  return ContentionPolicy(p, ContentionKnobs{675, 130, max_attempts, max_nc});
}

TEST(FixedPolicy, ReproducesTheConstants) {
  ContentionPolicy p = make(ContentionPolicyKind::kFixed);
  ContentionPolicy::State s = ContentionPolicy::seeded_state(1, 0);
  p.begin_call();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(p.next_step(), CasStep::kTxn);
    p.note_attempt();
    EXPECT_EQ(p.intra_delay(s), 675u);
    p.on_abort(s, CasAbort::kReadConflict);
    EXPECT_EQ(p.post_abort_delay(s), 130u);
  }
}

TEST(FixedPolicy, AttemptBudgetFallsBackOnBudgetLane) {
  ContentionPolicy p = make(ContentionPolicyKind::kFixed, /*max_attempts=*/3);
  ContentionPolicy::State s = ContentionPolicy::seeded_state(1, 0);
  p.begin_call();
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(p.next_step(), CasStep::kTxn);
    p.note_attempt();
    p.on_abort(s, CasAbort::kWriteConflict);
  }
  EXPECT_EQ(p.next_step(), CasStep::kFallbackBudget);
}

TEST(FixedPolicy, NonconflictBudgetDegrades) {
  ContentionPolicy p = make(ContentionPolicyKind::kFixed, 64, /*max_nc=*/2);
  ContentionPolicy::State s = ContentionPolicy::seeded_state(1, 0);
  p.begin_call();
  for (int i = 0; i < 2; ++i) {
    ASSERT_EQ(p.next_step(), CasStep::kTxn);
    p.note_attempt();
    p.on_abort(s, CasAbort::kNonConflict);
  }
  EXPECT_EQ(p.next_step(), CasStep::kFallbackDegraded);
}

TEST(FixedPolicy, ZeroNonconflictBudgetDisablesDegradation) {
  ContentionPolicy p = make(ContentionPolicyKind::kFixed, 8, /*max_nc=*/0);
  ContentionPolicy::State s = ContentionPolicy::seeded_state(1, 0);
  p.begin_call();
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(p.next_step(), CasStep::kTxn);
    p.note_attempt();
    p.on_abort(s, CasAbort::kNonConflict);
  }
  // Non-conflict aborts never degrade; only the attempt bound ends the call.
  EXPECT_EQ(p.next_step(), CasStep::kFallbackBudget);
}

TEST(AdaptiveBackoff, IntraDelayWalksTheLadderWithFailureLevel) {
  ContentionPolicy p = make(ContentionPolicyKind::kAdaptiveBackoff);
  ContentionPolicy::State s = ContentionPolicy::seeded_state(1, 0);
  p.begin_call();
  // Level 0: floor = 675 >> 3 = 84.
  EXPECT_EQ(p.intra_delay(s), 675u >> 3);
  // Conflicts escalate the level; delay doubles until the 2*675 cap.
  std::uint64_t prev = p.intra_delay(s);
  for (int i = 0; i < 8; ++i) {
    p.on_abort(s, CasAbort::kWriteConflict);
    const std::uint64_t d = p.intra_delay(s);
    EXPECT_GE(d, prev);
    EXPECT_LE(d, 2u * 675u);
    prev = d;
  }
  EXPECT_EQ(prev, 2u * 675u);  // saturated at the cap
  // Commits decay the level again.
  const std::uint32_t lvl = s.failure_level;
  p.on_commit(s);
  EXPECT_EQ(s.failure_level, lvl - 1);
}

TEST(AdaptiveBackoff, FailureLevelIsBounded) {
  ContentionPolicy p = make(ContentionPolicyKind::kAdaptiveBackoff);
  ContentionPolicy::State s = ContentionPolicy::seeded_state(1, 0);
  for (int i = 0; i < 100; ++i) p.on_abort(s, CasAbort::kReadConflict);
  EXPECT_EQ(s.failure_level, ContentionPolicy::kMaxFailureLevel);
}

TEST(AdaptiveBackoff, PostAbortDelayIsSeededDeterministicJitter) {
  ContentionPolicy p = make(ContentionPolicyKind::kAdaptiveBackoff);
  ContentionPolicy::State s1 = ContentionPolicy::seeded_state(7, 0);
  ContentionPolicy::State s2 = s1;  // identical history => identical draws
  for (int i = 0; i < 10; ++i) {
    const std::uint64_t full =
        bounded_exp_delay(130 >> 3, s1.failure_level, 2 * 130);
    const std::uint64_t d1 = p.post_abort_delay(s1);
    EXPECT_EQ(d1, p.post_abort_delay(s2));
    EXPECT_GE(d1, full / 2);
    EXPECT_LE(d1, full);
    p.on_abort(s1, CasAbort::kReadConflict);
    p.on_abort(s2, CasAbort::kReadConflict);
  }
  // Different streams desynchronize.
  ContentionPolicy::State s3 = ContentionPolicy::seeded_state(7, 1);
  bool differ = false;
  for (int i = 0; i < 10; ++i) {
    if (p.post_abort_delay(s1) != p.post_abort_delay(s3)) differ = true;
  }
  EXPECT_TRUE(differ);
}

// ---------------------------------------------------------------------------
// Satellite: commit-decay hysteresis (ROADMAP "policy hysteresis" follow-up).
// The decay mode is a ContentionPolicyParams knob so it keys config digests
// and snapshots like every other tuning field.
// ---------------------------------------------------------------------------

ContentionPolicy make_decay(std::uint8_t decay) {
  ContentionPolicyParams p;
  p.kind = ContentionPolicyKind::kAdaptiveBackoff;
  p.commit_decay = decay;
  return ContentionPolicy(
      p, ContentionKnobs{675, 130, 64, kDefaultNonconflictAbortBudget});
}

TEST(CommitDecay, LinearIsTheDefaultAndDecrementsByOne) {
  ContentionPolicyParams defaults;
  EXPECT_EQ(defaults.commit_decay, ContentionPolicyParams::kCommitDecayLinear);

  ContentionPolicy p = make_decay(ContentionPolicyParams::kCommitDecayLinear);
  ContentionPolicy::State s = ContentionPolicy::seeded_state(1, 0);
  s.failure_level = 5;
  const std::uint32_t expected[] = {4, 3, 2, 1, 0, 0};
  for (std::uint32_t want : expected) {
    p.on_commit(s);
    EXPECT_EQ(s.failure_level, want);
  }
}

TEST(CommitDecay, HalfLifeHalvesPerCommit) {
  ContentionPolicy p = make_decay(ContentionPolicyParams::kCommitDecayHalfLife);
  ContentionPolicy::State s = ContentionPolicy::seeded_state(1, 0);
  s.failure_level = 5;
  const std::uint32_t expected[] = {2, 1, 0, 0};
  for (std::uint32_t want : expected) {
    p.on_commit(s);
    EXPECT_EQ(s.failure_level, want);
  }
  // From the ladder's saturation point the half-life schedule relaxes in
  // log time: 16 -> 8 -> 4 -> 2 -> 1 -> 0.
  s.failure_level = ContentionPolicy::kMaxFailureLevel;
  const std::uint32_t from_max[] = {8, 4, 2, 1, 0};
  for (std::uint32_t want : from_max) {
    p.on_commit(s);
    EXPECT_EQ(s.failure_level, want);
  }
}

TEST(CommitDecay, EscalationIsUnaffectedByDecayMode) {
  ContentionPolicy lin = make_decay(ContentionPolicyParams::kCommitDecayLinear);
  ContentionPolicy half =
      make_decay(ContentionPolicyParams::kCommitDecayHalfLife);
  ContentionPolicy::State s1 = ContentionPolicy::seeded_state(1, 0);
  ContentionPolicy::State s2 = ContentionPolicy::seeded_state(1, 0);
  for (int i = 0; i < 6; ++i) {
    lin.on_abort(s1, CasAbort::kWriteConflict);
    half.on_abort(s2, CasAbort::kWriteConflict);
    EXPECT_EQ(s1.failure_level, s2.failure_level);
  }
}

TEST(CommitDecay, ParamsEqualityIncludesDecayMode) {
  ContentionPolicyParams a, b;
  EXPECT_TRUE(a == b);
  b.commit_decay = ContentionPolicyParams::kCommitDecayHalfLife;
  EXPECT_FALSE(a == b);
  a.commit_decay = ContentionPolicyParams::kCommitDecayHalfLife;
  EXPECT_TRUE(a == b);
}

TEST(AdaptiveBackoff, NonconflictAbortsDoNotEscalate) {
  ContentionPolicy p = make(ContentionPolicyKind::kAdaptiveBackoff);
  ContentionPolicy::State s = ContentionPolicy::seeded_state(1, 0);
  p.on_abort(s, CasAbort::kNonConflict);
  EXPECT_EQ(s.failure_level, 0u);  // capacity/interrupt are not contention
}

TEST(AdaptiveFallback, NonconflictAbortsSpendEightTimesFaster) {
  // Default budget derives max_attempts (64); nonconflict_cost 8 means 8
  // non-conflict aborts exhaust it — the same bound as the shared
  // degradation default — while conflict aborts could retry 64 times.
  ContentionPolicy p = make(ContentionPolicyKind::kAdaptiveFallback);
  ContentionPolicy::State s = ContentionPolicy::seeded_state(1, 0);
  p.begin_call();
  int attempts = 0;
  while (p.next_step() == CasStep::kTxn) {
    p.note_attempt();
    p.on_abort(s, CasAbort::kNonConflict);
    ++attempts;
  }
  EXPECT_EQ(attempts, 8);
  // Budget exhausted by non-conflict aborts => the degraded lane.
  EXPECT_EQ(p.next_step(), CasStep::kFallbackDegraded);
}

TEST(AdaptiveFallback, ConflictExhaustionTakesTheBudgetLane) {
  ContentionPolicy p = make(ContentionPolicyKind::kAdaptiveFallback,
                            /*max_attempts=*/16);
  ContentionPolicy::State s = ContentionPolicy::seeded_state(1, 0);
  p.begin_call();
  int attempts = 0;
  while (p.next_step() == CasStep::kTxn) {
    p.note_attempt();
    p.on_abort(s, CasAbort::kWriteConflict);
    ++attempts;
  }
  EXPECT_EQ(attempts, 16);  // conflict cost 1: budget == max_attempts
  EXPECT_EQ(p.next_step(), CasStep::kFallbackBudget);
}

TEST(AdaptiveFallback, ExplicitBudgetOverridesMaxAttempts) {
  ContentionPolicyParams params;
  params.kind = ContentionPolicyKind::kAdaptiveFallback;
  params.fallback_budget = 4;
  ContentionPolicy p(params, ContentionKnobs{675, 130, 64, 0});
  ContentionPolicy::State s = ContentionPolicy::seeded_state(1, 0);
  p.begin_call();
  int attempts = 0;
  while (p.next_step() == CasStep::kTxn) {
    p.note_attempt();
    p.on_abort(s, CasAbort::kReadConflict);
    ++attempts;
  }
  EXPECT_EQ(attempts, 4);
}

TEST(AdaptiveFallback, BeginCallResetsTheBudget) {
  ContentionPolicy p = make(ContentionPolicyKind::kAdaptiveFallback);
  ContentionPolicy::State s = ContentionPolicy::seeded_state(1, 0);
  p.begin_call();
  for (int i = 0; i < 8; ++i) {
    p.note_attempt();
    p.on_abort(s, CasAbort::kNonConflict);
  }
  ASSERT_NE(p.next_step(), CasStep::kTxn);
  p.begin_call();  // new TxCAS call: fresh budget, persistent State kept
  EXPECT_EQ(p.next_step(), CasStep::kTxn);
}

}  // namespace
}  // namespace sbq
