// Tests for the Treiber-stack basket (the modular-framework view of the
// original baskets queue's implicit basket): LIFO extraction, and the
// close-on-empty rule that makes the enclosing queue linearizable.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "basket/basket.hpp"
#include "basket/treiber_basket.hpp"
#include "common/barrier.hpp"

namespace sbq {
namespace {

static_assert(Basket<TreiberBasket<int>, int>);

TEST(TreiberBasket, LifoOrder) {
  TreiberBasket<int> b(4);
  int x = 1, y = 2, z = 3;
  EXPECT_TRUE(b.insert(&x, 0));
  EXPECT_TRUE(b.insert(&y, 1));
  EXPECT_TRUE(b.insert(&z, 2));
  EXPECT_EQ(b.extract(0), &z);
  EXPECT_EQ(b.extract(0), &y);
  EXPECT_EQ(b.extract(0), &x);
  EXPECT_EQ(b.extract(0), nullptr);
}

TEST(TreiberBasket, EmptyExtractClosesBasket) {
  TreiberBasket<int> b(2);
  EXPECT_EQ(b.extract(0), nullptr);
  EXPECT_TRUE(b.closed());
  int x = 1;
  EXPECT_FALSE(b.insert(&x, 0));  // inserts fail after closing
}

TEST(TreiberBasket, EmptinessIndicationStable) {
  TreiberBasket<int> b(2);
  int x = 1;
  EXPECT_TRUE(b.insert(&x, 0));
  EXPECT_EQ(b.extract(0), &x);
  EXPECT_EQ(b.extract(0), nullptr);  // indicates empty, closes
  int y = 2;
  EXPECT_FALSE(b.insert(&y, 1));
  EXPECT_EQ(b.extract(0), nullptr);
}

TEST(TreiberBasket, EmptyPredicate) {
  TreiberBasket<int> b(2);
  EXPECT_TRUE(b.empty());
  int x = 1;
  EXPECT_TRUE(b.insert(&x, 0));
  EXPECT_FALSE(b.empty());
}

TEST(TreiberBasket, ResetReopens) {
  TreiberBasket<int> b(2);
  EXPECT_EQ(b.extract(0), nullptr);  // closed now
  b.reset(0);
  EXPECT_FALSE(b.closed());
  int x = 1;
  EXPECT_TRUE(b.insert(&x, 0));
  EXPECT_EQ(b.extract(0), &x);
}

TEST(TreiberBasket, ConcurrentMixedNoLossNoDup) {
  constexpr int kInserters = 6;
  constexpr int kRounds = 200;
  for (int round = 0; round < kRounds; ++round) {
    TreiberBasket<int> b(kInserters);
    std::vector<int> values(kInserters);
    std::atomic<int> inserted{0};
    SpinBarrier barrier(kInserters + 2);
    std::vector<int*> got1, got2;

    std::vector<std::thread> threads;
    for (int t = 0; t < kInserters; ++t) {
      threads.emplace_back([&, t] {
        barrier.arrive_and_wait();
        if (b.insert(&values[t], t)) inserted.fetch_add(1);
      });
    }
    threads.emplace_back([&] {
      barrier.arrive_and_wait();
      while (int* e = b.extract(0)) got1.push_back(e);
    });
    threads.emplace_back([&] {
      barrier.arrive_and_wait();
      while (int* e = b.extract(1)) got2.push_back(e);
    });
    for (auto& th : threads) th.join();

    std::vector<int*> all(got1);
    all.insert(all.end(), got2.begin(), got2.end());
    // The extract loops ran until null, which closed the basket; anything
    // still inside stays unreachable, so successful inserts may exceed
    // extractions — but extractions must never exceed successful inserts,
    // and must never duplicate.
    std::sort(all.begin(), all.end());
    EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end());
    EXPECT_LE(static_cast<int>(all.size()), inserted.load());
    // And everything extracted must have been inserted by someone.
    for (int* e : all) {
      EXPECT_GE(e, &values[0]);
      EXPECT_LE(e, &values[kInserters - 1]);
    }
  }
}

}  // namespace
}  // namespace sbq
