// Checkpoint/fork regressions: a sweep repeat forked from a warmed
// Machine::snapshot must replay byte-identically to cold-starting the same
// cell (prefill + measure on a fresh machine), for every queue and for
// every workload shape the figure drivers sweep.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "benchsupport/metrics_json.hpp"
#include "sim/machine.hpp"
#include "sim_queue_bench_util.hpp"

namespace sbq::bench {
namespace {

constexpr std::uint64_t kPrefillSeed = 99;

WorkloadSpec consumer_only_spec(std::uint64_t seed) {
  WorkloadSpec spec;
  spec.kind = Workload::kConsumerOnly;
  spec.producers = 3;
  spec.consumers = 3;
  spec.ops_per_thread = 40;
  spec.seed = seed;
  spec.prefill_seed = kPrefillSeed;
  return spec;
}

WorkloadSpec mixed_spec(std::uint64_t seed) {
  WorkloadSpec spec;
  spec.kind = Workload::kMixed;
  spec.producers = 2;
  spec.consumers = 2;
  spec.ops_per_thread = 40;
  spec.prefill = 40;
  spec.seed = seed;
  spec.prefill_seed = kPrefillSeed;
  return spec;
}

// Byte-identical means *everything* observable matches: op counts, the
// bit-exact latency doubles, the simulated clock, and the full machine
// counter snapshot (serialized so any new counter is covered by default).
void expect_identical(const SimRunResult& a, const SimRunResult& b) {
  EXPECT_EQ(a.enq_ops, b.enq_ops);
  EXPECT_EQ(a.deq_ops, b.deq_ops);
  EXPECT_EQ(a.enq_latency_cycles, b.enq_latency_cycles);
  EXPECT_EQ(a.deq_latency_cycles, b.deq_latency_cycles);
  EXPECT_EQ(a.duration_cycles, b.duration_cycles);
  EXPECT_EQ(metrics_to_json(a.metrics).dump(), metrics_to_json(b.metrics).dump());
}

class MachineForkAllQueues : public ::testing::TestWithParam<QueueKind> {};

TEST_P(MachineForkAllQueues, ConsumerOnlyForkMatchesColdStart) {
  const QueueKind kind = GetParam();
  sim::MachineConfig mcfg;
  mcfg.cores = 3;
  const WarmedWorkload warmed(kind, mcfg, consumer_only_spec(5));
  for (std::uint64_t seed : {5, 6, 7}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const WorkloadSpec spec = consumer_only_spec(seed);
    expect_identical(warmed.run_repeat(spec),
                     run_queue_workload(kind, mcfg, spec));
  }
}

TEST_P(MachineForkAllQueues, MixedTwoSocketForkMatchesColdStart) {
  const QueueKind kind = GetParam();
  sim::MachineConfig mcfg;
  mcfg.cores = 4;
  mcfg.sockets = 2;
  const WarmedWorkload warmed(kind, mcfg, mixed_spec(11));
  for (std::uint64_t seed : {11, 12}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const WorkloadSpec spec = mixed_spec(seed);
    expect_identical(warmed.run_repeat(spec),
                     run_queue_workload(kind, mcfg, spec));
  }
}

TEST_P(MachineForkAllQueues, LinkInterconnectForkMatchesColdStart) {
  // The link model adds per-link busy horizons to the schedule-visible
  // state; the snapshot must carry them.
  const QueueKind kind = GetParam();
  sim::MachineConfig mcfg;
  mcfg.cores = 4;
  mcfg.sockets = 2;
  mcfg.interconnect_model = sim::InterconnectModel::kLink;
  const WarmedWorkload warmed(kind, mcfg, mixed_spec(3));
  const WorkloadSpec spec = mixed_spec(4);
  expect_identical(warmed.run_repeat(spec),
                   run_queue_workload(kind, mcfg, spec));
}

INSTANTIATE_TEST_SUITE_P(AllQueues, MachineForkAllQueues,
                         ::testing::ValuesIn(evaluated_queue_kinds()),
                         [](const auto& info) {
                           std::string name = queue_kind_name(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(MachineFork, RepeatedForksFromOneSnapshotAreIndependent) {
  sim::MachineConfig mcfg;
  mcfg.cores = 3;
  const WarmedWorkload warmed(QueueKind::kSbqHtm, mcfg, consumer_only_spec(5));
  const WorkloadSpec spec = consumer_only_spec(8);
  const SimRunResult first = warmed.run_repeat(spec);
  // A second fork of the same seed sees pristine snapshot state, not
  // leftovers from the first fork's run.
  expect_identical(first, warmed.run_repeat(spec));
}

TEST(MachineFork, SnapshotRestoresClockAndCounters) {
  sim::MachineConfig mcfg;
  mcfg.cores = 2;
  sim::Machine m(mcfg);
  const sim::Addr a = m.alloc();
  m.spawn([](sim::Machine& m, sim::Addr a) -> sim::Task<void> {
    co_await m.core(0).store(a, 7);
    co_await m.core(1).load(a);
  }(m, a));
  m.run();
  const sim::MachineSnapshot snap = m.snapshot();
  auto fork = sim::Machine::fork(snap);
  EXPECT_EQ(fork->engine().now(), m.engine().now());
  EXPECT_EQ(fork->metrics().messages, m.metrics().messages);
  // The fork continues from the warmed coherence state: core 1 still holds
  // the line, so a repeat load is a cache hit with no new traffic.
  const std::uint64_t msgs_before = fork->metrics().messages;
  fork->spawn([](sim::Machine& m, sim::Addr a) -> sim::Task<void> {
    const sim::Value v = co_await m.core(1).load(a);
    EXPECT_EQ(v, 7);
  }(*fork, a));
  fork->run();
  EXPECT_EQ(fork->metrics().messages, msgs_before);
}

}  // namespace
}  // namespace sbq::bench
