// Tests for SBQ — the modular scalable baskets queue (Algorithms 2–6),
// covering all three canonical instantiations:
//   SBQ-HTM  = Queue<T, SbqBasket<T>, HtmCas>
//   SBQ-CAS  = Queue<T, SbqBasket<T>, DelayedCas>
//   BQ-mod   = Queue<T, TreiberBasket<T>, NativeCas>  (modular view of BQ)
#include <gtest/gtest.h>

#include <memory>

#include "basket/sbq_basket.hpp"
#include "basket/treiber_basket.hpp"
#include "htm/cas_policy.hpp"
#include "queues/queue_traits.hpp"
#include "queues/sbq.hpp"
#include "queue_test_util.hpp"

namespace sbq {
namespace {

template <typename BasketT, typename CasT>
using Q = Queue<testutil::Element, BasketT, CasT>;

using SbqHtm = Q<SbqBasket<testutil::Element>, HtmCas>;
using SbqCas = Q<SbqBasket<testutil::Element>, DelayedCas>;
using BqModular = Q<TreiberBasket<testutil::Element>, NativeCas>;

static_assert(ConcurrentQueue<SbqHtm, testutil::Element>);

template <typename QueueT>
std::unique_ptr<QueueT> make_queue(std::size_t enq, std::size_t deq,
                                   std::size_t live = 0) {
  typename QueueT::Config cfg{};
  cfg.max_enqueuers = enq;
  cfg.max_dequeuers = deq;
  cfg.live_enqueuers = live;
  return std::make_unique<QueueT>(cfg);
}

// Typed tests run the same battery over every instantiation.
template <typename QueueT>
class SbqTypedTest : public ::testing::Test {};

using QueueTypes = ::testing::Types<SbqHtm, SbqCas, BqModular>;
TYPED_TEST_SUITE(SbqTypedTest, QueueTypes);

TYPED_TEST(SbqTypedTest, EmptyDequeueReturnsNull) {
  auto q = make_queue<TypeParam>(2, 2);
  EXPECT_EQ(q->dequeue(0), nullptr);
  EXPECT_EQ(q->dequeue(1), nullptr);
}

TYPED_TEST(SbqTypedTest, FifoSingleThread) {
  auto q = make_queue<TypeParam>(1, 1);
  testutil::Element vals[50];
  for (int i = 0; i < 50; ++i) {
    vals[i].producer = 0;
    vals[i].seq = static_cast<std::uint64_t>(i);
    q->enqueue(&vals[i], 0);
  }
  for (int i = 0; i < 50; ++i) EXPECT_EQ(q->dequeue(0), &vals[i]);
  EXPECT_EQ(q->dequeue(0), nullptr);
}

TYPED_TEST(SbqTypedTest, DrainRefillCycles) {
  auto q = make_queue<TypeParam>(1, 1);
  testutil::Element vals[10];
  for (int round = 0; round < 100; ++round) {
    for (auto& v : vals) q->enqueue(&v, 0);
    for (auto& v : vals) EXPECT_EQ(q->dequeue(0), &v);
    EXPECT_EQ(q->dequeue(0), nullptr);
  }
}

TYPED_TEST(SbqTypedTest, InterleavedSingleThread) {
  auto q = make_queue<TypeParam>(1, 1);
  testutil::Element vals[200];
  int deq_at = 0;
  for (int i = 0; i < 200; ++i) {
    q->enqueue(&vals[i], 0);
    if (i % 2 == 1) {
      EXPECT_EQ(q->dequeue(0), &vals[deq_at]);
      ++deq_at;
    }
  }
  while (deq_at < 200) {
    EXPECT_EQ(q->dequeue(0), &vals[deq_at]);
    ++deq_at;
  }
  EXPECT_EQ(q->dequeue(0), nullptr);
}

TYPED_TEST(SbqTypedTest, MpmcNoLossNoDupFifo) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr std::uint64_t kPerProducer = 3000;
  auto q = make_queue<TypeParam>(kProducers, kConsumers);
  std::vector<testutil::Element> storage;
  auto result = testutil::run_mpmc(*q, kProducers, kConsumers, kPerProducer,
                                   storage, /*single_id_space=*/false);
  testutil::verify_mpmc(result, kProducers, kPerProducer);
}

TYPED_TEST(SbqTypedTest, ProducersOnlyThenDrain) {
  constexpr int kProducers = 8;
  constexpr std::uint64_t kPerProducer = 2000;
  auto q = make_queue<TypeParam>(kProducers, 1);
  std::vector<testutil::Element> storage;
  auto result = testutil::run_mpmc(*q, kProducers, 1, kPerProducer, storage);
  testutil::verify_mpmc(result, kProducers, kPerProducer);
}

TYPED_TEST(SbqTypedTest, ConsumerHeavy) {
  constexpr int kProducers = 2;
  constexpr int kConsumers = 6;
  constexpr std::uint64_t kPerProducer = 5000;
  auto q = make_queue<TypeParam>(kProducers, kConsumers);
  std::vector<testutil::Element> storage;
  auto result =
      testutil::run_mpmc(*q, kProducers, kConsumers, kPerProducer, storage);
  testutil::verify_mpmc(result, kProducers, kPerProducer);
}

// SBQ-specific structural tests (not typed: they peek at indices).

TEST(SbqStructure, IndicesAreConsecutive) {
  auto q = make_queue<SbqHtm>(2, 1);
  testutil::Element vals[10];
  EXPECT_EQ(q->tail_index(), 0u);
  for (auto& v : vals) q->enqueue(&v, 0);
  // A single enqueuer appends one node per element (its basket insert
  // happens in its own fresh node each time since it always wins).
  EXPECT_EQ(q->tail_index(), 10u);
  EXPECT_EQ(q->head_index(), 0u);
  for (auto& v : vals) EXPECT_EQ(q->dequeue(0), &v);
  EXPECT_EQ(q->dequeue(0), nullptr);
}

TEST(SbqStructure, HeadAdvancesAndNodesReclaimed) {
  auto q = make_queue<SbqHtm>(1, 1);
  testutil::Element vals[1000];
  for (auto& v : vals) q->enqueue(&v, 0);
  for (auto& v : vals) EXPECT_EQ(q->dequeue(0), &v);
  // After draining, head has swung to the last node and the retired prefix
  // has been freed: the remaining list must be short.
  EXPECT_LE(q->node_count(), 4u);
  EXPECT_EQ(q->head_index(), 1000u);
}

TEST(SbqStructure, LiveEnqueuersBoundsBasketScan) {
  // Basket capacity 44 (the paper's fixed B), but only 2 live enqueuers:
  // dequeues must not sweep 44 cells to declare emptiness.
  auto q = make_queue<SbqHtm>(44, 1, /*live=*/2);
  testutil::Element a, b;
  q->enqueue(&a, 0);
  q->enqueue(&b, 1);
  EXPECT_NE(q->dequeue(0), nullptr);
  EXPECT_NE(q->dequeue(0), nullptr);
  EXPECT_EQ(q->dequeue(0), nullptr);
}

TEST(SbqStructure, EnqueueDequeueIdSpacesSeparate) {
  // enqueuer id 0 and dequeuer id 0 must be distinct protector slots; this
  // would deadlock/corrupt if they collided.
  auto q = make_queue<SbqHtm>(1, 1);
  testutil::Element v;
  q->enqueue(&v, 0);
  EXPECT_EQ(q->dequeue(0), &v);
}

}  // namespace
}  // namespace sbq
