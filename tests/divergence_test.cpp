// Differential divergence bisection self-test (docs/replay.md): the
// bisector run against the canonical-vs-legacy Inv-order pair — the exact
// schedule split src/sim/legacy_inv_order.hpp exists to expose — must
// report a divergence, localize the same first divergent (time, seq)
// coordinate on every invocation, and report no divergence for an
// identical-config pair.
#include <gtest/gtest.h>

#include <cstdint>

#include "replay/divergence.hpp"
#include "sim_queue_bench_util.hpp"

namespace sbq::bench {
namespace {

sim::MachineConfig side_config(bool canonical_inv_order) {
  sim::MachineConfig mcfg;
  mcfg.cores = 8;
  mcfg.collect_stats = false;
  mcfg.canonical_inv_order = canonical_inv_order;
  return mcfg;
}

WorkloadSpec contended_spec() {
  WorkloadSpec spec;
  spec.kind = Workload::kMixed;
  spec.producers = 4;
  spec.consumers = 4;
  spec.ops_per_thread = 50;
  spec.seed = 17;
  return spec;
}

replay::ObservedRunFn make_runner(const sim::MachineConfig& mcfg,
                                  const WorkloadSpec& spec) {
  return [mcfg, spec](sim::Interconnect::SendObserverFn fn, void* ctx) {
    sim::Machine m(mcfg);
    m.interconnect().set_send_observer(fn, ctx);
    with_queue(QueueKind::kSbqHtm, m, spec, [&](auto& q, int offset) {
      return run_spec(m, q, spec, offset);
    });
  };
}

TEST(Divergence, IdenticalConfigsProduceIdenticalStreams) {
  const WorkloadSpec spec = contended_spec();
  const replay::DivergenceReport report = replay::find_divergence(
      make_runner(side_config(true), spec), make_runner(side_config(true), spec),
      /*window=*/256);
  EXPECT_FALSE(report.diverged);
  EXPECT_GT(report.total_a, 0u);
  EXPECT_EQ(report.total_a, report.total_b);
}

TEST(Divergence, CanonicalVsLegacyInvOrderLocalizedDeterministically) {
  const WorkloadSpec spec = contended_spec();
  auto bisect = [&] {
    return replay::find_divergence(make_runner(side_config(true), spec),
                                   make_runner(side_config(false), spec),
                                   /*window=*/256);
  };
  const replay::DivergenceReport first = bisect();
  ASSERT_TRUE(first.diverged);
  EXPECT_FALSE(first.prefix_only);
  // The divergent messages really differ, and the context dumps carry the
  // DebugRing framing the CLI prints.
  EXPECT_FALSE(first.a == first.b);
  EXPECT_NE(first.context_a.find("interconnect messages"), std::string::npos);
  EXPECT_NE(first.context_b.find("interconnect messages"), std::string::npos);

  // Acceptance criterion: two consecutive bisections of the same pair agree
  // on the first divergent (time, seq) coordinate exactly.
  const replay::DivergenceReport second = bisect();
  ASSERT_TRUE(second.diverged);
  EXPECT_EQ(first.seq, second.seq);
  EXPECT_EQ(first.a.time, second.a.time);
  EXPECT_EQ(first.b.time, second.b.time);
  EXPECT_TRUE(first.a == second.a);
  EXPECT_TRUE(first.b == second.b);
  EXPECT_EQ(replay::format_divergence(first),
            replay::format_divergence(second));
}

TEST(Divergence, WindowSizeDoesNotMoveTheCoordinate) {
  const WorkloadSpec spec = contended_spec();
  auto bisect = [&](std::uint64_t window) {
    return replay::find_divergence(make_runner(side_config(true), spec),
                                   make_runner(side_config(false), spec),
                                   window);
  };
  const replay::DivergenceReport small = bisect(64);
  const replay::DivergenceReport large = bisect(4096);
  ASSERT_TRUE(small.diverged);
  ASSERT_TRUE(large.diverged);
  EXPECT_EQ(small.seq, large.seq);
  EXPECT_TRUE(small.a == large.a);
  EXPECT_TRUE(small.b == large.b);
}

}  // namespace
}  // namespace sbq::bench
