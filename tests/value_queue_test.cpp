// Tests for the by-value queue adapter: value semantics, move-only types,
// arena recycling across threads, and MPMC integrity.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/barrier.hpp"
#include "queues/value_queue.hpp"

namespace sbq {
namespace {

TEST(ValueQueue, FifoWithCopies) {
  ValueQueue<std::string> q({.max_enqueuers = 1, .max_dequeuers = 1});
  q.enqueue(std::string("alpha"), 0);
  q.enqueue(std::string("beta"), 0);
  auto a = q.dequeue(0);
  auto b = q.dequeue(0);
  auto c = q.dequeue(0);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, "alpha");
  EXPECT_EQ(*b, "beta");
  EXPECT_FALSE(c.has_value());
}

TEST(ValueQueue, MoveOnlyElements) {
  ValueQueue<std::unique_ptr<int>> q({.max_enqueuers = 1, .max_dequeuers = 1});
  q.enqueue(std::make_unique<int>(7), 0);
  auto out = q.dequeue(0);
  ASSERT_TRUE(out.has_value());
  ASSERT_NE(*out, nullptr);
  EXPECT_EQ(**out, 7);
}

TEST(ValueQueue, RecyclesStorage) {
  // Long alternating run must not grow memory: boxes are recycled through
  // the arena freelists. Smoke-checked by running a lot of ops.
  ValueQueue<int> q({.max_enqueuers = 1, .max_dequeuers = 1});
  for (int i = 0; i < 50000; ++i) {
    q.enqueue(i, 0);
    auto v = q.dequeue(0);
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, i);
  }
}

TEST(ValueQueue, CrossThreadDequeueReturnsToOwnerArena) {
  ValueQueue<int> q({.max_enqueuers = 1, .max_dequeuers = 1});
  constexpr int kOps = 20000;
  std::thread producer([&] {
    for (int i = 0; i < kOps; ++i) q.enqueue(i, 0);
  });
  int got = 0;
  long sum = 0;
  while (got < kOps) {
    if (auto v = q.dequeue(0)) {
      sum += *v;
      ++got;
    }
  }
  producer.join();
  EXPECT_EQ(sum, static_cast<long>(kOps) * (kOps - 1) / 2);
}

TEST(ValueQueue, MpmcExactlyOnce) {
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr int kPer = 5000;
  ValueQueue<long> q({.max_enqueuers = kProducers, .max_dequeuers = kConsumers});
  SpinBarrier barrier(kProducers + kConsumers);
  std::atomic<long> remaining{static_cast<long>(kProducers) * kPer};
  std::atomic<long> sum{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      barrier.arrive_and_wait();
      for (int i = 0; i < kPer; ++i) {
        q.enqueue(static_cast<long>(p) * kPer + i, p);
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      barrier.arrive_and_wait();
      while (remaining.load(std::memory_order_acquire) > 0) {
        if (auto v = q.dequeue(c)) {
          sum.fetch_add(*v, std::memory_order_relaxed);
          remaining.fetch_sub(1, std::memory_order_acq_rel);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const long n = static_cast<long>(kProducers) * kPer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

struct CountedPayload {
  static inline std::atomic<int> live{0};
  int v = 0;
  CountedPayload() { live.fetch_add(1); }
  explicit CountedPayload(int x) : v(x) { live.fetch_add(1); }
  CountedPayload(const CountedPayload& o) : v(o.v) { live.fetch_add(1); }
  CountedPayload(CountedPayload&& o) noexcept : v(o.v) { live.fetch_add(1); }
  ~CountedPayload() { live.fetch_sub(1); }
};

TEST(ValueQueue, DestroysDequeuedPayloads) {
  CountedPayload::live.store(0);
  {
    ValueQueue<CountedPayload> q({.max_enqueuers = 1, .max_dequeuers = 1});
    for (int i = 0; i < 100; ++i) q.enqueue(CountedPayload(i), 0);
    for (int i = 0; i < 100; ++i) {
      auto v = q.dequeue(0);
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(v->v, i);
    }
    EXPECT_EQ(CountedPayload::live.load(), 0);
  }
  EXPECT_EQ(CountedPayload::live.load(), 0);
}

}  // namespace
}  // namespace sbq
