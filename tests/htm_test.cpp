// Tests for the HTM facade. On hosts without RTM (the expected case) the
// facade must behave as the documented "always aborts, non-conflict"
// backend so that TxCAS deterministically takes its fallback path.
#include <gtest/gtest.h>

#include "htm/htm.hpp"

namespace sbq::htm {
namespace {

TEST(HtmStatus, BitPredicates) {
  EXPECT_TRUE(started(kStarted));
  EXPECT_FALSE(started(0u));
  EXPECT_TRUE(is_conflict(kAbortConflict));
  EXPECT_TRUE(is_conflict(kAbortConflict | kAbortNested));
  EXPECT_FALSE(is_conflict(kAbortRetry));
  EXPECT_TRUE(is_nested(kAbortNested));
  EXPECT_FALSE(is_nested(kAbortConflict));
  EXPECT_TRUE(is_explicit(kAbortExplicit));
}

TEST(HtmStatus, ExplicitCodeExtraction) {
  const unsigned status = kAbortExplicit | (7u << 24);
  EXPECT_TRUE(is_explicit(status));
  EXPECT_EQ(explicit_code(status), 7u);
  EXPECT_EQ(explicit_code(kAbortExplicit), 0u);
}

TEST(HtmFacade, FallbackBackendNeverStarts) {
  if (hardware_available()) GTEST_SKIP() << "real RTM present";
  const unsigned ret = begin();
  EXPECT_FALSE(started(ret));
  // The fallback abort is a non-conflict abort: callers retry / fall back.
  EXPECT_FALSE(is_conflict(ret));
  EXPECT_FALSE(in_transaction());
  end();  // must be a safe no-op outside a transaction on the fallback
}

TEST(HtmFacade, HardwareTransactionRoundTrip) {
  if (!hardware_available()) GTEST_SKIP() << "no RTM hardware";
  // With real RTM, a trivial transaction should commit within a few tries.
  int committed = 0;
  for (int attempt = 0; attempt < 100 && committed == 0; ++attempt) {
    if (started(begin())) {
      end();
      committed = 1;
    }
  }
  EXPECT_EQ(committed, 1);
}

}  // namespace
}  // namespace sbq::htm
