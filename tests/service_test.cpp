// Service-harness invariants (docs/service.md): arrival-schedule
// determinism, admission conservation, and an end-to-end sim-backed smoke
// over the broker.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "common/stats.hpp"
#include "service/broker.hpp"
#include "sim_queue_bench_util.hpp"

namespace {

using namespace sbq;
using namespace sbq::service;
using sbq::bench::QueueKind;
using sbq::bench::WorkloadSpec;
using sbq::bench::with_queue;

ServiceSpec overload_spec(ArrivalKind kind, AdmissionPolicy policy) {
  ServiceSpec spec;
  spec.arrival.kind = kind;
  // Far past the drain capacity of one consumer with 16-cycle service
  // time, so the depth-8 gate must trip.
  spec.arrival.rate_per_kcycle = 32.0;
  spec.arrival.seed = 7;
  spec.admission.depth_limit = 8;
  spec.admission.policy = policy;
  spec.producers = 2;
  spec.consumers = 1;
  spec.total_ops = 150;
  // Make the *queue* the bottleneck (not the producers' own enqueue
  // latency): with a 2000-cycle downstream service time one consumer
  // drains well under 2 ops/kcycle — far below what two producers can
  // offer — so the depth-8 gate must trip.
  spec.consumer_think = 2000;
  return spec;
}

ServiceResult run_sbq_service(const ServiceSpec& spec) {
  sim::MachineConfig mcfg;
  mcfg.cores = spec.producers + spec.consumers;
  sim::Machine m(mcfg);
  WorkloadSpec qspec;
  qspec.kind = sbq::bench::Workload::kMixed;
  qspec.producers = spec.producers;
  qspec.consumers = spec.consumers;
  return with_queue(QueueKind::kSbqHtm, m, qspec, [&](auto& q, int offset) {
    return run_service(m, q, spec, offset);
  });
}

TEST(ArrivalSchedule, SameConfigSameSchedule) {
  for (ArrivalKind kind : {ArrivalKind::kPoisson, ArrivalKind::kBursty,
                           ArrivalKind::kRamp, ArrivalKind::kSkewed}) {
    ArrivalConfig cfg;
    cfg.kind = kind;
    cfg.rate_per_kcycle = 4.0;
    cfg.seed = 99;
    const auto a = generate_arrivals(cfg, 500);
    const auto b = generate_arrivals(cfg, 500);
    EXPECT_EQ(a, b) << arrival_kind_name(kind);
  }
}

TEST(ArrivalSchedule, SeedChangesSchedule) {
  ArrivalConfig cfg;
  const auto a = generate_arrivals(cfg, 200);
  cfg.seed += 1;
  const auto b = generate_arrivals(cfg, 200);
  EXPECT_NE(a, b);
}

TEST(ArrivalSchedule, TimestampsStrictlyIncrease) {
  for (ArrivalKind kind : {ArrivalKind::kPoisson, ArrivalKind::kBursty,
                           ArrivalKind::kRamp}) {
    ArrivalConfig cfg;
    cfg.kind = kind;
    cfg.rate_per_kcycle = 50.0;  // high rate stresses the >= 1-cycle floor
    const auto times = generate_arrivals(cfg, 300);
    ASSERT_EQ(times.size(), 300u);
    for (std::size_t i = 1; i < times.size(); ++i) {
      EXPECT_GE(times[i], times[i - 1] + 1) << arrival_kind_name(kind);
    }
  }
}

TEST(ArrivalSchedule, BurstyMeanRateExceedsPoisson) {
  ArrivalConfig cfg;
  cfg.rate_per_kcycle = 4.0;
  const auto poisson = generate_arrivals(cfg, 2000);
  cfg.kind = ArrivalKind::kBursty;
  const auto bursty = generate_arrivals(cfg, 2000);
  // Same op count at a higher mean instantaneous rate finishes sooner.
  EXPECT_LT(bursty.back(), poisson.back());
}

TEST(ArrivalSchedule, RejectsNonPositiveRate) {
  ArrivalConfig cfg;
  cfg.rate_per_kcycle = 0.0;
  EXPECT_THROW(generate_arrivals(cfg, 10), std::invalid_argument);
}

TEST(ArrivalSchedule, PartitionCoversEveryOpExactlyOnce) {
  for (ArrivalKind kind : {ArrivalKind::kPoisson, ArrivalKind::kSkewed}) {
    ArrivalConfig cfg;
    cfg.kind = kind;
    const auto times = generate_arrivals(cfg, 400);
    const auto parts = partition_arrivals(cfg, times, 4);
    ASSERT_EQ(parts.size(), 4u);
    std::vector<int> seen(times.size(), 0);
    for (const auto& worker : parts) {
      for (std::size_t i = 1; i < worker.size(); ++i) {
        EXPECT_LE(worker[i - 1].at, worker[i].at);  // ascending per worker
      }
      for (const WorkerArrival& a : worker) {
        ASSERT_LT(a.op, seen.size());
        EXPECT_EQ(times[a.op], a.at);
        ++seen[a.op];
      }
    }
    for (std::size_t op = 0; op < seen.size(); ++op) {
      EXPECT_EQ(seen[op], 1) << "op " << op << " under "
                             << arrival_kind_name(kind);
    }
  }
}

TEST(ArrivalSchedule, SkewRoutesHotFractionToWorkerZero) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kSkewed;
  cfg.hot_fraction = 0.5;
  const auto times = generate_arrivals(cfg, 2000);
  const auto parts = partition_arrivals(cfg, times, 4);
  const double hot_share =
      static_cast<double>(parts[0].size()) / static_cast<double>(times.size());
  EXPECT_GT(hot_share, 0.4);
  EXPECT_LT(hot_share, 0.6);
  // Round-robin would have given worker 0 exactly 1/4.
  EXPECT_GT(parts[0].size(), parts[1].size());
}

TEST(AdmissionGate, ConservationIdentity) {
  AdmissionConfig cfg;
  cfg.depth_limit = 2;
  AdmissionGate gate(cfg);
  gate.accept();
  gate.accept();
  EXPECT_FALSE(gate.has_room());
  gate.reject();
  gate.release();
  EXPECT_TRUE(gate.has_room());
  gate.accept();
  EXPECT_EQ(gate.offered(), 4u);
  EXPECT_EQ(gate.accepted() + gate.rejected(), gate.offered());
  EXPECT_EQ(gate.depth(), gate.accepted() - gate.released());
}

TEST(ServiceBroker, OverloadDropConservesAndRejects) {
  const ServiceResult r =
      run_sbq_service(overload_spec(ArrivalKind::kPoisson,
                                    AdmissionPolicy::kDrop));
  EXPECT_EQ(r.offered, 150u);
  EXPECT_EQ(r.accepted + r.rejected, r.offered);
  EXPECT_GT(r.rejected, 0u) << "overload past a depth-8 gate must shed load";
  EXPECT_EQ(r.consumed, r.accepted) << "everything admitted must drain";
  EXPECT_EQ(r.sojourn.pushed(), r.consumed);
}

TEST(ServiceBroker, BackpressureWaitsInsteadOfRejecting) {
  const ServiceResult r =
      run_sbq_service(overload_spec(ArrivalKind::kBursty,
                                    AdmissionPolicy::kBackpressure));
  EXPECT_EQ(r.rejected, 0u);
  EXPECT_EQ(r.accepted, r.offered);
  EXPECT_EQ(r.consumed, r.accepted);
  EXPECT_GT(r.backpressure_waits, 0u);
  EXPECT_GT(r.backpressure_cycles, 0u);
}

TEST(ServiceBroker, SojournPercentilesAreSaneUnderOverload) {
  const ServiceResult r =
      run_sbq_service(overload_spec(ArrivalKind::kPoisson,
                                    AdmissionPolicy::kDrop));
  Summary sojourn;
  r.sojourn.drain_into(sojourn, 1.0);
  const double p50 = sojourn.percentile(50);
  const double p99 = sojourn.percentile(99);
  EXPECT_GE(p50, 0.0);
  EXPECT_GE(p99, p50);
  EXPECT_GT(p99, 0.0) << "a saturated broker must show queueing delay";
}

TEST(ServiceBroker, RunsAreDeterministic) {
  const ServiceSpec spec =
      overload_spec(ArrivalKind::kRamp, AdmissionPolicy::kDrop);
  const ServiceResult a = run_sbq_service(spec);
  const ServiceResult b = run_sbq_service(spec);
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.consumed, b.consumed);
  EXPECT_EQ(a.duration_cycles, b.duration_cycles);
  Summary sa, sb;
  a.sojourn.drain_into(sa, 1.0);
  b.sojourn.drain_into(sb, 1.0);
  EXPECT_EQ(sa.percentile(99), sb.percentile(99));
}

TEST(ServiceBroker, RefusesShardedMachine) {
  sim::MachineConfig mcfg;
  mcfg.cores = 4;
  mcfg.dir_slices = 2;
  mcfg.machine_threads = 2;
  mcfg.alloc_arenas = true;
  sim::Machine m(mcfg);
  WorkloadSpec qspec;
  qspec.kind = sbq::bench::Workload::kMixed;
  qspec.producers = 2;
  qspec.consumers = 2;
  ServiceSpec spec;
  spec.producers = 2;
  spec.consumers = 2;
  spec.total_ops = 10;
  with_queue(QueueKind::kSbqHtm, m, qspec, [&](auto& q, int offset) {
    EXPECT_THROW(run_service(m, q, spec, offset), std::invalid_argument);
  });
}

TEST(ServiceBroker, UnderloadDeliversEverythingWithoutRejects) {
  ServiceSpec spec;
  spec.arrival.rate_per_kcycle = 1.0;  // well under one consumer's capacity
  spec.arrival.seed = 3;
  spec.admission.depth_limit = 64;
  spec.producers = 2;
  spec.consumers = 1;
  spec.total_ops = 80;
  const ServiceResult r = run_sbq_service(spec);
  EXPECT_EQ(r.rejected, 0u);
  EXPECT_EQ(r.consumed, 80u);
}

}  // namespace
