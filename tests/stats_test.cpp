// Tests for the summary-statistics helpers used by the benchmark harness.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "common/stats.hpp"

namespace sbq {
namespace {

TEST(Summary, MeanAndStddev) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample stddev of this classic set is sqrt(32/7).
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, MinMax) {
  Summary s;
  s.add(3.5);
  s.add(-1.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(Summary, EmptyIsSafe) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  // percentile is total: empty sample sets yield 0.0 instead of throwing
  // (callers like bench/service_latency.cpp hit this when every offered op
  // of a cell was rejected by admission control).
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(-10), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(999), 0.0);
}

TEST(Summary, SingleSample) {
  Summary s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 42.0);
}

TEST(Summary, PercentilesNearestRank) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(1), 1.0);
  // Out-of-range p is clamped.
  EXPECT_DOUBLE_EQ(s.percentile(-5), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(250), 100.0);
}

TEST(Summary, AddAfterSortedQueriesStillCorrect) {
  Summary s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);  // forces a sort
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Summary, ClearResets) {
  Summary s;
  s.add(1.0);
  s.clear();
  EXPECT_EQ(s.count(), 0u);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

TEST(OnlineStats, MatchesBatchComputation) {
  OnlineStats o;
  Summary s;
  const double values[] = {1.5, 2.5, 2.5, 8.0, -3.0, 0.0, 4.25};
  for (double v : values) {
    o.add(v);
    s.add(v);
  }
  EXPECT_EQ(o.count(), s.count());
  EXPECT_NEAR(o.mean(), s.mean(), 1e-12);
  EXPECT_NEAR(o.stddev(), s.stddev(), 1e-12);
}

TEST(OnlineStats, EmptyAndSingle) {
  OnlineStats o;
  EXPECT_EQ(o.count(), 0u);
  EXPECT_DOUBLE_EQ(o.variance(), 0.0);
  o.add(3.0);
  EXPECT_DOUBLE_EQ(o.mean(), 3.0);
  EXPECT_DOUBLE_EQ(o.variance(), 0.0);
}

}  // namespace
}  // namespace sbq
