// Tests for the StripedBasket extension (scalable-dequeue basket, the
// paper's §8 future-work item). Must satisfy the same basket-ADT spec and
// the same linearizability-relevant properties as the SBQ basket.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "basket/basket.hpp"
#include "basket/striped_basket.hpp"
#include "common/barrier.hpp"
#include "htm/cas_policy.hpp"
#include "queues/sbq.hpp"
#include "queue_test_util.hpp"

namespace sbq {
namespace {

static_assert(Basket<StripedBasket<int>, int>);

TEST(StripedBasket, InsertThenExtract) {
  StripedBasket<int> b(8);
  int x = 1;
  EXPECT_TRUE(b.insert(&x, 3));
  EXPECT_FALSE(b.empty());
  EXPECT_EQ(b.extract(0), &x);
}

TEST(StripedBasket, FullFillDrainAllStripes) {
  constexpr int kN = 16;
  StripedBasket<int> b(kN);
  int vals[kN];
  for (int i = 0; i < kN; ++i) EXPECT_TRUE(b.insert(&vals[i], i));
  std::set<int*> got;
  while (int* e = b.extract(0)) EXPECT_TRUE(got.insert(e).second);
  EXPECT_EQ(got.size(), static_cast<std::size_t>(kN));
  EXPECT_TRUE(b.empty());
}

TEST(StripedBasket, ExtractorsStartAtDifferentStripes) {
  // With 4 stripes and ids 0..3, extract(id) should drain id's own stripe
  // first — verify by extracting one element per id and checking they come
  // from distinct stripes (distinct quarters of the cell range).
  constexpr int kN = 16;
  StripedBasket<int> b(kN);
  int vals[kN];
  for (int i = 0; i < kN; ++i) ASSERT_TRUE(b.insert(&vals[i], i));
  std::set<int> quarters;
  for (int id = 0; id < 4; ++id) {
    int* e = b.extract(id);
    ASSERT_NE(e, nullptr);
    quarters.insert(static_cast<int>((e - &vals[0]) / 4));
  }
  EXPECT_EQ(quarters.size(), 4u);
}

TEST(StripedBasket, EmptinessIndicationStable) {
  StripedBasket<int> b(8);
  int x = 1;
  EXPECT_TRUE(b.insert(&x, 5));
  EXPECT_EQ(b.extract(0), &x);
  EXPECT_EQ(b.extract(0), nullptr);  // sweeps & closes all stripes
  EXPECT_TRUE(b.empty());
  int y = 2;
  EXPECT_FALSE(b.insert(&y, 6));     // all cells closed
  EXPECT_EQ(b.extract(1), nullptr);  // stable across ids/stripes
}

TEST(StripedBasket, EmptyBitSetExactlyWhenLastIndexClaimed) {
  StripedBasket<int> b(4);
  int vals[4];
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(b.insert(&vals[i], i));
  for (int i = 0; i < 4; ++i) {
    EXPECT_NE(b.extract(0), nullptr);
  }
  EXPECT_TRUE(b.empty());
}

TEST(StripedBasket, ResetReopens) {
  StripedBasket<int> b(8);
  EXPECT_EQ(b.extract(0), nullptr);
  EXPECT_TRUE(b.empty());
  for (int id = 0; id < 8; ++id) b.reset(id);
  EXPECT_FALSE(b.empty());
  int x = 1;
  EXPECT_TRUE(b.insert(&x, 0));
  EXPECT_EQ(b.extract(0), &x);
}

TEST(StripedBasket, SmallLiveCountFewerStripesThanConfigured) {
  // live = 2 with 4 configured stripes: must degrade to 2 stripes and keep
  // working (no zero-sized stripes / lost cells).
  StripedBasket<int> b(44, /*live_inserters=*/2);
  int x = 1, y = 2;
  EXPECT_TRUE(b.insert(&x, 0));
  EXPECT_TRUE(b.insert(&y, 1));
  std::set<int*> got;
  while (int* e = b.extract(0)) got.insert(e);
  EXPECT_EQ(got.size(), 2u);
  EXPECT_TRUE(b.empty());
}

TEST(StripedBasket, ConcurrentInsertExtractNoLossNoDup) {
  constexpr int kInserters = 12;
  constexpr int kExtractors = 6;
  constexpr int kRounds = 200;
  for (int round = 0; round < kRounds; ++round) {
    StripedBasket<int> b(kInserters);
    std::vector<int> values(kInserters);
    SpinBarrier barrier(kInserters + kExtractors);
    std::atomic<int> inserted{0};
    std::vector<std::vector<int*>> got(kExtractors);

    std::vector<std::thread> threads;
    for (int t = 0; t < kInserters; ++t) {
      threads.emplace_back([&, t] {
        barrier.arrive_and_wait();
        if (b.insert(&values[t], t)) inserted.fetch_add(1);
      });
    }
    for (int t = 0; t < kExtractors; ++t) {
      threads.emplace_back([&, t] {
        barrier.arrive_and_wait();
        while (int* e = b.extract(t)) got[t].push_back(e);
      });
    }
    for (auto& th : threads) th.join();
    while (int* e = b.extract(0)) got[0].push_back(e);

    std::vector<int*> all;
    for (auto& v : got) all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());
    EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end());
    EXPECT_EQ(static_cast<int>(all.size()), inserted.load());
  }
}

// The striped basket must plug into the modular queue unchanged and keep
// the queue linearizable.
TEST(StripedBasketQueue, MpmcThroughModularQueue) {
  using Q = Queue<testutil::Element, StripedBasket<testutil::Element>, HtmCas>;
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  Q::Config cfg;
  cfg.max_enqueuers = kProducers;
  cfg.max_dequeuers = kConsumers;
  Q q(cfg);
  constexpr std::uint64_t kPer = 3000;
  std::vector<testutil::Element> storage;
  auto result = testutil::run_mpmc(q, kProducers, kConsumers, kPer, storage);
  testutil::verify_mpmc(result, kProducers, kPer);
}

TEST(StripedBasketQueue, FifoSingleThread) {
  using Q = Queue<testutil::Element, StripedBasket<testutil::Element>, HtmCas>;
  Q::Config cfg;
  cfg.max_enqueuers = 1;
  cfg.max_dequeuers = 1;
  Q q(cfg);
  testutil::Element vals[30];
  for (auto& v : vals) q.enqueue(&v, 0);
  for (auto& v : vals) EXPECT_EQ(q.dequeue(0), &v);
  EXPECT_EQ(q.dequeue(0), nullptr);
}

// Parameterized: stripe counts and capacities.
class StripedSweep : public ::testing::TestWithParam<int> {};

TEST_P(StripedSweep, FillDrainExact) {
  const int n = GetParam();
  StripedBasket<int, 4> b(static_cast<std::size_t>(n));
  std::vector<int> values(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(b.insert(&values[static_cast<std::size_t>(i)], i));
  }
  int extracted = 0;
  while (b.extract(extracted % 7) != nullptr) ++extracted;
  EXPECT_EQ(extracted, n);
}

INSTANTIATE_TEST_SUITE_P(Capacities, StripedSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16, 44, 100));

}  // namespace
}  // namespace sbq
