// Golden-sequence test for the timing-wheel event engine.
//
// The engine's contract is a strict (time, seq) FIFO total order: events
// run in timestamp order, and equal timestamps run in scheduling order.
// The timing wheel implements this with single-time slots, an occupancy
// bitmap, and a seq-merged overflow heap — this test drives every one of
// those paths (equal-time bursts, self-rescheduling cascades that wrap the
// wheel many times, far-future overflow events that merge by seq) and
// checks the executed order against an independent reference model: a
// stable sort of the scheduled (time, seq) pairs.
//
// Also pins down the run_until boundary semantics documented in
// engine.hpp: the limit is inclusive, and a false return leaves now() at
// the last-run event's time (no clock fast-forward).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/engine.hpp"

namespace sbq::sim {
namespace {

// Schedules into the engine and into a reference list at the same time;
// expected order = stable sort of (absolute time, schedule order).
class GoldenHarness {
 public:
  explicit GoldenHarness(Engine& e) : e_(e) {}

  void sched(Time delay, int id) {
    expected_.push_back(Ref{e_.now() + delay, seq_++, id});
    e_.schedule(delay, [this, id] { log_.push_back(id); });
  }

  // Schedule an event that runs `fn` (which may schedule more) and logs.
  template <typename F>
  void sched_action(Time delay, int id, F fn) {
    expected_.push_back(Ref{e_.now() + delay, seq_++, id});
    e_.schedule(delay, [this, id, fn = std::move(fn)] {
      log_.push_back(id);
      fn();
    });
  }

  std::vector<int> expected_order() const {
    std::vector<Ref> refs = expected_;
    std::stable_sort(refs.begin(), refs.end(),
                     [](const Ref& a, const Ref& b) { return a.time < b.time; });
    std::vector<int> ids;
    ids.reserve(refs.size());
    for (const Ref& r : refs) ids.push_back(r.id);
    return ids;
  }

  const std::vector<int>& log() const { return log_; }

 private:
  struct Ref {
    Time time;
    std::uint64_t seq;
    int id;
  };
  Engine& e_;
  std::vector<Ref> expected_;
  std::vector<int> log_;
  std::uint64_t seq_ = 0;
};

TEST(EngineGolden, EqualTimeBurstsInterleavedWithDistinctTimes) {
  Engine e;
  GoldenHarness h(e);
  int id = 0;
  // Bursts of equal timestamps at scattered times, scheduled out of order.
  for (int round = 0; round < 8; ++round) {
    h.sched(37, id++);
    for (int i = 0; i < 20; ++i) h.sched(5, id++);
    h.sched(1, id++);
    for (int i = 0; i < 20; ++i) h.sched(5, id++);  // same slot, later seqs
    h.sched(8191, id++);  // end of the wheel window
  }
  e.run();
  EXPECT_EQ(h.log(), h.expected_order());
  EXPECT_EQ(e.events_processed(), static_cast<std::uint64_t>(id));
}

TEST(EngineGolden, SelfReschedulingCascadeWrapsTheWheel) {
  Engine e;
  GoldenHarness h(e);
  // Lanes reschedule themselves with a pseudorandom small delay until a
  // budget runs out — the engine_microbench workload shape. Total simulated
  // time far exceeds kWheelSlots (8192), so the window wraps repeatedly.
  struct Lane {
    GoldenHarness& h;
    int remaining;
    std::uint64_t state;
    int id_base;
    int fired = 0;
    void fire() {
      if (remaining-- == 0) return;
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      h.sched_action(1 + (state & 7), id_base + fired++, [this] { fire(); });
    }
  };
  std::vector<Lane> lanes;
  for (int w = 0; w < 4; ++w) {
    lanes.push_back(Lane{h, 4500, static_cast<std::uint64_t>(w + 1), w * 100000});
  }
  for (Lane& lane : lanes) lane.fire();
  e.run();
  EXPECT_GT(e.now(), 8192u * 2);  // the wheel really wrapped
  EXPECT_EQ(h.log(), h.expected_order());
}

TEST(EngineGolden, OverflowEventsMergeBySeq) {
  Engine e;
  GoldenHarness h(e);
  // Far-future events (into the overflow heap) scheduled BEFORE near
  // events that later land in the same slot: when the overflow drains, the
  // earlier seq must still run first.
  h.sched(8200, 0);   // overflow (seq 0)
  h.sched(20000, 1);  // overflow, much later (seq 1)
  h.sched_action(8, 2, [&h] {
    // Runs at t=8: 8192 ahead lands at t=8200 — same time as id 0, but a
    // later seq, so it must run after it.
    h.sched(8192, 3);
    // And a zero-delay chain at the same instant.
    h.sched(0, 4);
  });
  h.sched(5, 5);
  // A second overflow batch at one shared far time, interleaved with a
  // near event, to exercise the drain's in-slot seq insert.
  h.sched(30000, 6);
  h.sched(30000, 7);
  h.sched(3, 8);
  e.run();
  EXPECT_EQ(h.log(), h.expected_order());
  EXPECT_GE(e.alloc_stats().overflow_events, 4u);
}

TEST(EngineGolden, MixedStressAllPaths) {
  Engine e;
  GoldenHarness h(e);
  // One driver lane that, every firing, emits a spray of same-time and
  // far-future events — equal-time FIFO, wheel wrap, and overflow merge in
  // one schedule.
  struct Driver {
    GoldenHarness& h;
    int remaining;
    std::uint64_t state;
    int next_id = 0;
    void fire() {
      if (remaining-- == 0) return;
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      for (int i = 0; i < 3; ++i) h.sched(state & 15, next_id++);
      if ((state & 3) == 0) h.sched(8192 + (state & 4095), next_id++);
      h.sched_action(1 + (state & 7), next_id++, [this] { fire(); });
    }
  };
  Driver d{h, 2000, 42};
  d.fire();
  e.run();
  EXPECT_EQ(h.log(), h.expected_order());
}

TEST(EngineGolden, RunUntilLimitIsInclusive) {
  Engine e;
  int ran = 0;
  e.schedule(10, [&] { ++ran; });
  e.schedule(50, [&] { ++ran; });
  e.schedule(60, [&] { ++ran; });
  EXPECT_FALSE(e.run_until(50));
  EXPECT_EQ(ran, 2);  // the event AT the limit ran
  EXPECT_TRUE(e.run_until(60));
  EXPECT_EQ(ran, 3);
}

TEST(EngineGolden, RunUntilRunsZeroDelayChainsAtTheLimit) {
  Engine e;
  std::vector<int> log;
  e.schedule(50, [&] {
    log.push_back(0);
    e.schedule(0, [&] {
      log.push_back(1);
      e.schedule(0, [&] { log.push_back(2); });
    });
  });
  e.schedule(51, [&] { log.push_back(3); });
  EXPECT_FALSE(e.run_until(50));
  // The whole time-50 chain ran, including events scheduled at the limit
  // by events that themselves ran at the limit.
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(e.run_until(100));
  EXPECT_EQ(log.back(), 3);
}

TEST(EngineGolden, RunUntilDoesNotFastForwardTheClock) {
  Engine e;
  e.schedule(10, [] {});
  e.schedule(100, [] {});
  EXPECT_FALSE(e.run_until(50));
  // now() stays at the last-run event's time, not the limit.
  EXPECT_EQ(e.now(), 10u);
  EXPECT_TRUE(e.run_until(100));
  EXPECT_EQ(e.now(), 100u);
}

TEST(EngineGolden, RunUntilOnFarFutureOverflowEvent) {
  Engine e;
  int ran = 0;
  e.schedule(100000, [&] { ++ran; });  // sits in the overflow heap
  EXPECT_FALSE(e.run_until(99999));
  EXPECT_EQ(ran, 0);
  EXPECT_EQ(e.now(), 0u);  // nothing ran; the clock did not move
  EXPECT_TRUE(e.run_until(100000));  // inclusive at the limit
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(e.now(), 100000u);
}

TEST(EngineGolden, SteadyCascadeIsAllocationFree) {
  Engine e;
  // Warm-up: run one cascade to fill the slab freelist.
  struct Lane {
    Engine& e;
    int remaining;
    void fire() {
      if (remaining-- == 0) return;
      e.schedule(3, [this] { fire(); });
    }
  };
  Lane warm{e, 2000};
  warm.fire();
  e.run();
  const auto before = e.alloc_stats();
  Lane steady{e, 2000};
  steady.fire();
  e.run();
  const auto after = e.alloc_stats();
  EXPECT_EQ(after.slab_refills, before.slab_refills);
  EXPECT_EQ(after.boxed_allocs, before.boxed_allocs);
}

}  // namespace
}  // namespace sbq::sim
