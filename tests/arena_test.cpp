// Tests for the per-thread freelist arena.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "common/arena.hpp"
#include "common/cacheline.hpp"

namespace sbq {
namespace {

TEST(Arena, AllocationsAreDistinctAndAligned) {
  Arena arena(24, kCacheLineSize, 16);
  std::set<void*> seen;
  for (int i = 0; i < 100; ++i) {
    void* p = arena.allocate();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % kCacheLineSize, 0u);
    EXPECT_TRUE(seen.insert(p).second) << "duplicate allocation";
  }
}

TEST(Arena, LocalFreelistRecycles) {
  Arena arena(32, kCacheLineSize, 8);
  void* a = arena.allocate();
  arena.deallocate_local(a);
  void* b = arena.allocate();
  EXPECT_EQ(a, b);  // LIFO reuse
}

TEST(Arena, RemoteFreesAreDrained) {
  Arena arena(32, kCacheLineSize, 8);
  std::vector<void*> blocks;
  for (int i = 0; i < 8; ++i) blocks.push_back(arena.allocate());
  const std::size_t slabs_before = arena.slab_count();

  // "Remote" thread returns the blocks.
  std::thread remote([&] {
    for (void* p : blocks) arena.deallocate_remote(p);
  });
  remote.join();

  // Owner should reuse them without growing a slab.
  std::set<void*> reused;
  for (int i = 0; i < 8; ++i) reused.insert(arena.allocate());
  EXPECT_EQ(arena.slab_count(), slabs_before);
  for (void* p : blocks) EXPECT_TRUE(reused.count(p) == 1);
}

TEST(Arena, GrowsSlabsOnDemand) {
  Arena arena(64, kCacheLineSize, 4);
  EXPECT_EQ(arena.slab_count(), 0u);
  for (int i = 0; i < 4; ++i) arena.allocate();
  EXPECT_EQ(arena.slab_count(), 1u);
  arena.allocate();
  EXPECT_EQ(arena.slab_count(), 2u);
}

TEST(Arena, BlockSizeRoundedToAlignment) {
  Arena arena(1, 64, 4);
  EXPECT_EQ(arena.block_size(), 64u);
}

struct Tracked {
  static inline std::atomic<int> live{0};
  int payload;
  explicit Tracked(int p) : payload(p) { live.fetch_add(1); }
  ~Tracked() { live.fetch_sub(1); }
};

TEST(TypedArena, ConstructsAndDestroys) {
  Tracked::live.store(0);
  {
    TypedArena<Tracked> arena(8);
    Tracked* t = arena.create(41);
    EXPECT_EQ(t->payload, 41);
    EXPECT_EQ(Tracked::live.load(), 1);
    arena.destroy_local(t);
    EXPECT_EQ(Tracked::live.load(), 0);
    Tracked* u = arena.create(7);
    EXPECT_EQ(u, t);  // recycled storage
    arena.destroy_remote(u);
    EXPECT_EQ(Tracked::live.load(), 0);
  }
}

TEST(TypedArena, ManyObjectsStressSingleThread) {
  TypedArena<Tracked> arena(32);
  Tracked::live.store(0);
  std::vector<Tracked*> objs;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 100; ++i) objs.push_back(arena.create(i));
    EXPECT_EQ(Tracked::live.load(), 100);
    for (Tracked* t : objs) arena.destroy_local(t);
    objs.clear();
    EXPECT_EQ(Tracked::live.load(), 0);
  }
}

TEST(Arena, ConcurrentRemoteFreeStress) {
  // Owner allocates; two remote threads free concurrently; owner reuses.
  Arena arena(sizeof(void*), kCacheLineSize, 64);
  constexpr int kBlocks = 512;
  std::vector<void*> blocks;
  for (int i = 0; i < kBlocks; ++i) blocks.push_back(arena.allocate());

  std::thread r1([&] {
    for (int i = 0; i < kBlocks; i += 2) arena.deallocate_remote(blocks[i]);
  });
  std::thread r2([&] {
    for (int i = 1; i < kBlocks; i += 2) arena.deallocate_remote(blocks[i]);
  });
  r1.join();
  r2.join();

  std::set<void*> reused;
  for (int i = 0; i < kBlocks; ++i) {
    void* p = arena.allocate();
    EXPECT_TRUE(reused.insert(p).second);
    EXPECT_EQ(std::count(blocks.begin(), blocks.end(), p), 1);
  }
}

}  // namespace
}  // namespace sbq
