// Tests for the original (Hoffman–Shalev–Shavit) baskets queue.
#include <gtest/gtest.h>

#include "queues/baskets_queue.hpp"
#include "queues/queue_traits.hpp"
#include "queue_test_util.hpp"

namespace sbq {
namespace {

static_assert(ConcurrentQueue<BasketsQueue<int>, int>);

TEST(BasketsQueue, EmptyDequeueReturnsNull) {
  BasketsQueue<int> q(2);
  EXPECT_EQ(q.dequeue(0), nullptr);
}

TEST(BasketsQueue, FifoSingleThread) {
  BasketsQueue<int> q(1);
  int vals[20];
  for (int i = 0; i < 20; ++i) q.enqueue(&vals[i], 0);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(q.dequeue(0), &vals[i]);
  EXPECT_EQ(q.dequeue(0), nullptr);
}

TEST(BasketsQueue, DrainRefillCycles) {
  BasketsQueue<int> q(1);
  int vals[10];
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 10; ++i) q.enqueue(&vals[i], 0);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(q.dequeue(0), &vals[i]);
    EXPECT_EQ(q.dequeue(0), nullptr);
  }
}

TEST(BasketsQueue, ReclaimsDeletedPrefix) {
  // Enough operations to trigger the periodic free_chain path repeatedly;
  // verified by ASAN/valgrind cleanliness and by not crashing.
  BasketsQueue<int> q(1);
  int v = 0;
  for (int i = 0; i < 5000; ++i) {
    q.enqueue(&v, 0);
    EXPECT_EQ(q.dequeue(0), &v);
  }
  EXPECT_EQ(q.dequeue(0), nullptr);
}

TEST(BasketsQueue, MpmcNoLossNoDupFifo) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr std::uint64_t kPerProducer = 4000;
  BasketsQueue<testutil::Element> q(kProducers + kConsumers);
  std::vector<testutil::Element> storage;
  auto result = testutil::run_mpmc(q, kProducers, kConsumers, kPerProducer,
                                   storage, /*single_id_space=*/true);
  testutil::verify_mpmc(result, kProducers, kPerProducer);
}

TEST(BasketsQueue, ProducerBurstThenDrain) {
  constexpr int kProducers = 8;
  constexpr std::uint64_t kPerProducer = 2000;
  BasketsQueue<testutil::Element> q(kProducers + 1);
  std::vector<testutil::Element> storage;
  auto result =
      testutil::run_mpmc(q, kProducers, 1, kPerProducer, storage, true);
  testutil::verify_mpmc(result, kProducers, kPerProducer);
}

}  // namespace
}  // namespace sbq
