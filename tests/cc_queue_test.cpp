// Tests for the CC-Synch combining queue.
#include <gtest/gtest.h>

#include "queues/cc_queue.hpp"
#include "queues/queue_traits.hpp"
#include "queue_test_util.hpp"

namespace sbq {
namespace {

static_assert(ConcurrentQueue<CcQueue<int>, int>);

TEST(CcQueue, EmptyDequeueReturnsNull) {
  CcQueue<int> q(2);
  EXPECT_EQ(q.dequeue(0), nullptr);
}

TEST(CcQueue, FifoSingleThread) {
  CcQueue<int> q(1);
  int vals[30];
  for (int i = 0; i < 30; ++i) q.enqueue(&vals[i], 0);
  for (int i = 0; i < 30; ++i) EXPECT_EQ(q.dequeue(0), &vals[i]);
  EXPECT_EQ(q.dequeue(0), nullptr);
}

TEST(CcQueue, NodeRecyclingKeepsFifo) {
  CcQueue<int> q(1);
  int vals[8];
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 8; ++i) q.enqueue(&vals[i], 0);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(q.dequeue(0), &vals[i]);
  }
  EXPECT_EQ(q.dequeue(0), nullptr);
}

TEST(CcQueue, CombinerServesOthers) {
  // Two threads hammer the queue; the combining protocol must route all
  // operations through a single combiner at a time without losing any.
  CcQueue<testutil::Element> q(4);
  std::vector<testutil::Element> storage;
  auto result = testutil::run_mpmc(q, 2, 2, 8000, storage, true);
  testutil::verify_mpmc(result, 2, 8000);
}

TEST(CcQueue, MpmcNoLossNoDupFifo) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr std::uint64_t kPerProducer = 4000;
  CcQueue<testutil::Element> q(kProducers + kConsumers);
  std::vector<testutil::Element> storage;
  auto result = testutil::run_mpmc(q, kProducers, kConsumers, kPerProducer,
                                   storage, /*single_id_space=*/true);
  testutil::verify_mpmc(result, kProducers, kPerProducer);
}

}  // namespace
}  // namespace sbq
