// Tests for the aspect-oriented violation checker itself (the §5.3.2 proof
// framework turned into a runtime checker): each violation class must be
// detected on a minimal crafted history and absent on a correct one.
#include <gtest/gtest.h>

#include "verify/history_checker.hpp"

namespace sbq::histcheck {
namespace {

bool has(const std::vector<Violation>& vs, const std::string& kind) {
  for (const auto& v : vs) {
    if (v.kind == kind) return true;
  }
  return false;
}

TEST(HistoryChecker, CleanSequentialHistoryPasses) {
  History h;
  h.record_enq(0, 1, 100);
  h.record_enq(2, 3, 101);
  h.record_deq(4, 5, 100);
  h.record_deq(6, 7, 101);
  h.record_deq(8, 9, 0);  // genuinely empty
  EXPECT_TRUE(h.check().empty());
}

TEST(HistoryChecker, DetectsVFresh) {
  History h;
  h.record_deq(0, 1, 999);  // never enqueued
  EXPECT_TRUE(has(h.check(), "VFresh"));
}

TEST(HistoryChecker, DetectsVRepeat) {
  History h;
  h.record_enq(0, 1, 7);
  h.record_deq(2, 3, 7);
  h.record_deq(4, 5, 7);
  EXPECT_TRUE(has(h.check(), "VRepeat"));
}

TEST(HistoryChecker, DetectsVOrdWrongOrder) {
  History h;
  h.record_enq(0, 1, 1);   // enq(1) completes...
  h.record_enq(2, 3, 2);   // ...before enq(2) starts
  h.record_deq(4, 5, 2);   // 2 dequeued first...
  h.record_deq(6, 7, 1);   // ...and deq(1) starts only after deq(2) ended
  EXPECT_TRUE(has(h.check(), "VOrd"));
}

TEST(HistoryChecker, ConcurrentEnqueuesAnyOrderOk) {
  History h;
  h.record_enq(0, 10, 1);  // overlapping enqueues: either order linearizes
  h.record_enq(0, 10, 2);
  h.record_deq(11, 12, 2);
  h.record_deq(13, 14, 1);
  EXPECT_TRUE(h.check().empty());
}

TEST(HistoryChecker, ConcurrentDequeuesAnyOrderOk) {
  History h;
  h.record_enq(0, 1, 1);
  h.record_enq(2, 3, 2);
  h.record_deq(4, 9, 2);  // overlapping dequeues may resolve either way
  h.record_deq(4, 9, 1);
  EXPECT_TRUE(h.check().empty());
}

TEST(HistoryChecker, DetectsVWit) {
  History h;
  h.record_enq(0, 1, 5);   // enqueued, completed
  h.record_deq(2, 3, 0);   // NULL although 5 is in the queue throughout
  h.record_deq(4, 5, 5);   // removed only later
  EXPECT_TRUE(has(h.check(), "VWit"));
}

TEST(HistoryChecker, NullOkWhenElementRemovedConcurrently) {
  History h;
  h.record_enq(0, 1, 5);
  h.record_deq(2, 8, 5);  // removal overlaps the null dequeue below
  h.record_deq(3, 7, 0);  // may linearize after the removal: OK
  EXPECT_TRUE(h.check().empty());
}

TEST(HistoryChecker, NullOkBeforeAnyEnqueue) {
  History h;
  h.record_deq(0, 1, 0);
  h.record_enq(2, 3, 5);
  h.record_deq(4, 5, 5);
  EXPECT_TRUE(h.check().empty());
}

TEST(HistoryChecker, MergeCombinesThreadHistories) {
  History a, b;
  a.record_enq(0, 1, 1);
  b.record_deq(2, 3, 1);
  a.merge(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_TRUE(a.check().empty());
}

}  // namespace
}  // namespace sbq::histcheck
