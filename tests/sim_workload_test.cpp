// Tests for the simulated workload drivers used by the figure benchmarks:
// op accounting, determinism under fixed seeds, and basic sanity of the
// producer-only / consumer-only / mixed runs.
#include <gtest/gtest.h>

#include "benchsupport/sim_workload.hpp"
#include "simqueue/sim_faa_queue.hpp"
#include "simqueue/sim_sbq.hpp"

namespace sbq::simq {
namespace {

sim::MachineConfig machine_for(int cores, int sockets = 1) {
  sim::MachineConfig cfg;
  cfg.cores = cores;
  cfg.sockets = sockets;
  return cfg;
}

TEST(SimWorkload, ProducerOnlyAccounting) {
  sim::Machine m(machine_for(4));
  SimFaaQueue q(m, {});
  const SimRunResult r = run_producer_only(m, q, 4, 50);
  EXPECT_EQ(r.enq_ops, 200u);
  EXPECT_EQ(r.deq_ops, 0u);
  EXPECT_GT(r.enq_latency_cycles, 0.0);
  EXPECT_GT(r.duration_cycles, 0.0);
  EXPECT_GT(r.throughput_mops(0.4), 0.0);
}

TEST(SimWorkload, ConsumerOnlyDrainsPrefill) {
  sim::Machine m(machine_for(4));
  SimFaaQueue q(m, {});
  const SimRunResult r = run_consumer_only(m, q, 4, 4, 50, /*seed=*/3,
                                           /*consumer_id_offset=*/4);
  EXPECT_EQ(r.deq_ops, 200u);
  EXPECT_GT(r.deq_latency_cycles, 0.0);
}

TEST(SimWorkload, MixedRunsBothSides) {
  sim::Machine m(machine_for(8, 2));
  SimSbq q(m, {.enqueuers = 4, .dequeuers = 4});
  const SimRunResult r = run_mixed(m, q, 4, 4, 40, /*prefill=*/80);
  EXPECT_EQ(r.enq_ops, 160u);
  EXPECT_EQ(r.deq_ops, 160u);
  EXPECT_GT(r.enq_latency_cycles, 0.0);
  EXPECT_GT(r.deq_latency_cycles, 0.0);
}

TEST(SimWorkload, DeterministicUnderSeed) {
  auto run_once = [](std::uint64_t seed) {
    sim::Machine m(machine_for(4));
    SimFaaQueue q(m, {});
    return run_producer_only(m, q, 4, 60, seed);
  };
  const SimRunResult a = run_once(7);
  const SimRunResult b = run_once(7);
  const SimRunResult c = run_once(8);
  EXPECT_DOUBLE_EQ(a.enq_latency_cycles, b.enq_latency_cycles);
  EXPECT_DOUBLE_EQ(a.duration_cycles, b.duration_cycles);
  // A different seed shifts the jitter and thus the timing.
  EXPECT_NE(a.duration_cycles, c.duration_cycles);
}

TEST(SimWorkload, LatencyConversionHelpers) {
  SimRunResult r;
  r.enq_latency_cycles = 100;
  r.deq_latency_cycles = 50;
  r.enq_ops = 10;
  r.deq_ops = 10;
  r.duration_cycles = 1000;
  EXPECT_DOUBLE_EQ(r.enq_latency_ns(0.4), 40.0);
  EXPECT_DOUBLE_EQ(r.deq_latency_ns(0.4), 20.0);
  // 20 ops in 400 ns = 0.05 ops/ns = 50 Mops/s.
  EXPECT_DOUBLE_EQ(r.throughput_mops(0.4), 50.0);
}

TEST(SimWorkload, MoreProducersMoreWallTimeAtFixedPerThreadOps) {
  // The FAA queue's enqueue side is contended: with per-thread ops fixed,
  // latency (and thus wall time) must grow with the producer count.
  auto latency_at = [](int producers) {
    sim::Machine m(machine_for(producers));
    SimFaaQueue q(m, {});
    return run_producer_only(m, q, producers, 60).enq_latency_cycles;
  };
  EXPECT_GT(latency_at(8), 1.8 * latency_at(2));
}

}  // namespace
}  // namespace sbq::simq
