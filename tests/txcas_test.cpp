// Tests for TxCAS semantics. On non-RTM hosts TxCAS degenerates to its
// wait-free plain-CAS fallback, so every semantic test here must hold on
// both backends: TxCAS is a CAS (succeeds iff the target held the expected
// value, exactly one winner under contention).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/barrier.hpp"
#include "htm/cas_policy.hpp"
#include "htm/txcas.hpp"

namespace sbq {
namespace {

TEST(TxCas, SucceedsOnExpectedValue) {
  std::atomic<std::uint64_t> word{5};
  TxCas<std::uint64_t> cas;
  EXPECT_TRUE(cas(word, 5, 9));
  EXPECT_EQ(word.load(), 9u);
}

TEST(TxCas, FailsOnUnexpectedValue) {
  std::atomic<std::uint64_t> word{5};
  TxCas<std::uint64_t> cas;
  EXPECT_FALSE(cas(word, 4, 9));
  EXPECT_EQ(word.load(), 5u);
}

TEST(TxCas, PointerSpecialization) {
  int a = 0, b = 0;
  std::atomic<int*> word{&a};
  TxCas<int*> cas;
  EXPECT_TRUE(cas(word, &a, &b));
  EXPECT_EQ(word.load(), &b);
  EXPECT_FALSE(cas(word, &a, nullptr));
  EXPECT_EQ(word.load(), &b);
}

TEST(TxCas, ZeroDelayConfig) {
  TxCasConfig cfg;
  cfg.intra_txn_delay = 0;
  cfg.post_abort_delay = 0;
  std::atomic<std::uint64_t> word{1};
  TxCas<std::uint64_t> cas(cfg);
  EXPECT_TRUE(cas(word, 1, 2));
  EXPECT_FALSE(cas(word, 1, 3));
  EXPECT_EQ(word.load(), 2u);
}

TEST(TxCas, ExactlyOneWinnerUnderContention) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  std::atomic<std::uint64_t> word{0};
  TxCas<std::uint64_t> cas;
  SpinBarrier barrier(kThreads);
  std::vector<int> wins(kThreads, 0);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t round = 0; round < kRounds; ++round) {
        barrier.arrive_and_wait();
        // All threads CAS round -> round+1; exactly one may succeed.
        if (cas(word, round, round + 1)) ++wins[t];
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& th : threads) th.join();

  int total_wins = 0;
  for (int w : wins) total_wins += w;
  EXPECT_EQ(total_wins, kRounds);  // one winner per round, no lost rounds
  EXPECT_EQ(word.load(), static_cast<std::uint64_t>(kRounds));
}

TEST(TxCas, SequenceLockFreeProgression) {
  // Hammer a counter with CAS-increments from several threads; the counter
  // must reach exactly the number of successful increments.
  constexpr int kThreads = 4;
  constexpr int kIncrementsPerThread = 5000;
  std::atomic<std::uint64_t> counter{0};
  TxCasConfig cfg;
  cfg.intra_txn_delay = 4;
  cfg.post_abort_delay = 2;
  TxCas<std::uint64_t> cas(cfg);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        std::uint64_t cur = counter.load(std::memory_order_acquire);
        while (!cas(counter, cur, cur + 1)) {
          cur = counter.load(std::memory_order_acquire);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.load(), static_cast<std::uint64_t>(kThreads) * kIncrementsPerThread);
}

TEST(CasPolicies, AllImplementCasSemantics) {
  std::atomic<void*> word{nullptr};
  int x = 0;

  NativeCas native;
  EXPECT_TRUE(native(word, static_cast<void*>(nullptr), static_cast<void*>(&x)));
  EXPECT_FALSE(native(word, static_cast<void*>(nullptr), static_cast<void*>(&x)));

  word.store(nullptr);
  DelayedCas delayed{.delay_iterations = 2};
  EXPECT_TRUE(delayed(word, static_cast<void*>(nullptr), static_cast<void*>(&x)));
  EXPECT_FALSE(delayed(word, static_cast<void*>(nullptr), static_cast<void*>(&x)));

  word.store(nullptr);
  HtmCas htm_cas;
  EXPECT_TRUE(htm_cas(word, static_cast<void*>(nullptr), static_cast<void*>(&x)));
  EXPECT_FALSE(htm_cas(word, static_cast<void*>(nullptr), static_cast<void*>(&x)));
}

TEST(CasPolicies, DelayedCasPrechecksValue) {
  // DelayedCas must fail fast (without delay side effects) when the value
  // already differs — mirroring TxCAS's self-abort on mismatch.
  std::atomic<int*> word{nullptr};
  int a = 0;
  word.store(&a);
  DelayedCas delayed{.delay_iterations = 1 << 20};  // huge delay if taken
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(delayed(word, static_cast<int*>(nullptr), &a));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // Generous bound: the precheck path must not spin the full delay.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 200);
}

}  // namespace
}  // namespace sbq
