// Aspect-oriented linearizability checking for queue histories.
//
// §5.3.2 of the paper proves SBQ linearizable via the Henzinger–Sezgin–
// Vafeiadis framework [13]: a complete queue history is linearizable iff it
// contains none of four violations (assuming unique enqueued values):
//
//   VFresh  — a dequeue returns a value that was never enqueued;
//   VRepeat — two dequeues return the value of the same enqueue;
//   VOrd    — enqueue(b) is invoked after enqueue(a) COMPLETES, some
//             dequeue returns b, but a is never dequeued or a's dequeue is
//             invoked only after b's dequeue completes;
//   VWit    — a dequeue returns NULL although some element was enqueued
//             (completed) before its invocation and not yet dequeued
//             throughout its whole execution interval.
//
// This header implements the checks directly over recorded operation
// intervals. On the simulator, timestamps are exact virtual times, so the
// precedence relation (resp < inv) is precise — the checker is a sound and
// complete test for these four violation classes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sbq::histcheck {

using ValueT = std::uint64_t;
using TimeT = std::uint64_t;

struct Op {
  enum Kind { kEnq, kDeq } kind;
  TimeT invoked;
  TimeT responded;
  ValueT value;  // enq: value enqueued; deq: value returned (0 = NULL)
};

struct Violation {
  std::string kind;
  std::string detail;
};

class History {
 public:
  void record_enq(TimeT inv, TimeT resp, ValueT v) {
    ops_.push_back({Op::kEnq, inv, resp, v});
  }
  void record_deq(TimeT inv, TimeT resp, ValueT v) {
    ops_.push_back({Op::kDeq, inv, resp, v});
  }
  void merge(const History& other) {
    ops_.insert(ops_.end(), other.ops_.begin(), other.ops_.end());
  }
  std::size_t size() const { return ops_.size(); }

  // Runs all four checks; returns every violation found (empty = pass).
  std::vector<Violation> check() const;

 private:
  std::vector<Op> ops_;
};

inline std::vector<Violation> History::check() const {
  std::vector<Violation> out;

  std::map<ValueT, const Op*> enq_of;   // value -> enqueue op
  std::vector<const Op*> deqs_null;
  std::map<ValueT, std::vector<const Op*>> deqs_of;  // value -> dequeues

  for (const Op& op : ops_) {
    if (op.kind == Op::kEnq) {
      enq_of[op.value] = &op;
    } else if (op.value == 0) {
      deqs_null.push_back(&op);
    } else {
      deqs_of[op.value].push_back(&op);
    }
  }

  // VFresh + VRepeat.
  for (const auto& [v, deqs] : deqs_of) {
    if (enq_of.count(v) == 0) {
      out.push_back({"VFresh", "dequeued value " + std::to_string(v) +
                                   " was never enqueued"});
    }
    if (deqs.size() > 1) {
      out.push_back({"VRepeat", "value " + std::to_string(v) + " dequeued " +
                                    std::to_string(deqs.size()) + " times"});
    }
  }

  // Precedence: op1 precedes op2 iff op1.responded < op2.invoked.
  auto precedes = [](const Op* a, const Op* b) {
    return a->responded < b->invoked;
  };

  // VOrd: enq(a) ≺ enq(b), b dequeued, and (a never dequeued, or
  // deq(b) ≺ deq(a)).
  for (const auto& [vb, deqs_b] : deqs_of) {
    auto itb = enq_of.find(vb);
    if (itb == enq_of.end()) continue;
    const Op* enq_b = itb->second;
    for (const auto& [va, enq_a] : enq_of) {
      if (va == vb || !precedes(enq_a, enq_b)) continue;
      auto ita = deqs_of.find(va);
      if (ita == deqs_of.end()) {
        // a never dequeued although b (enqueued later) was: only a
        // violation if the history is complete and drained — callers
        // ensure every enqueued element is dequeued, so report it.
        out.push_back({"VOrd", "value " + std::to_string(vb) +
                                   " dequeued but earlier-enqueued " +
                                   std::to_string(va) + " never dequeued"});
        continue;
      }
      const Op* deq_a = ita->second.front();
      const Op* deq_b = deqs_b.front();
      if (precedes(deq_b, deq_a)) {
        out.push_back({"VOrd",
                       "deq(" + std::to_string(vb) + ") completed before deq(" +
                           std::to_string(va) + ") was invoked, but enq(" +
                           std::to_string(va) + ") preceded enq(" +
                           std::to_string(vb) + ")"});
      }
    }
  }

  // VWit: a null dequeue D although some value v has enq(v) ≺ D and every
  // dequeue of v begins only after D responds (v was in the queue for all
  // of D's interval).
  for (const Op* d : deqs_null) {
    for (const auto& [v, enq] : enq_of) {
      if (!precedes(enq, d)) continue;
      const auto it = deqs_of.find(v);
      bool witness_in_queue_throughout;
      if (it == deqs_of.end()) {
        witness_in_queue_throughout = true;  // never dequeued at all
      } else {
        // If any dequeue of v was invoked before D responded, v may have
        // left the queue during D's interval — not a witness.
        witness_in_queue_throughout = true;
        for (const Op* dv : it->second) {
          if (dv->invoked < d->responded) {
            witness_in_queue_throughout = false;
            break;
          }
        }
      }
      if (witness_in_queue_throughout) {
        out.push_back({"VWit",
                       "dequeue returned NULL at [" +
                           std::to_string(d->invoked) + "," +
                           std::to_string(d->responded) + ") although " +
                           std::to_string(v) + " was enqueued before and not "
                           "removed during the interval"});
        break;  // one witness per null dequeue is enough
      }
    }
  }
  return out;
}

}  // namespace sbq::histcheck
