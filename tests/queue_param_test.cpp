// Parameterized property sweeps for the native SBQ: the MPMC invariants
// (exactly-once delivery, per-producer FIFO) must hold across basket sizes,
// live-enqueuer fractions, and thread mixes; plus targeted property tests
// on the structural invariants of the modular queue (consecutive node
// indices, monotone head/tail).
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <tuple>

#include "basket/sbq_basket.hpp"
#include "htm/cas_policy.hpp"
#include "queues/sbq.hpp"
#include "queue_test_util.hpp"

namespace sbq {
namespace {

using testutil::Element;
using SbqHtm = Queue<Element, SbqBasket<Element>, HtmCas>;

// (producers, consumers, basket_capacity)
using Param = std::tuple<int, int, int>;

class SbqSweepTest : public ::testing::TestWithParam<Param> {};

TEST_P(SbqSweepTest, MpmcInvariantsHold) {
  const auto [producers, consumers, capacity] = GetParam();
  if (capacity < producers) GTEST_SKIP() << "capacity must cover producers";
  SbqHtm::Config cfg;
  cfg.max_enqueuers = static_cast<std::size_t>(capacity);
  cfg.max_dequeuers = static_cast<std::size_t>(consumers);
  cfg.live_enqueuers = static_cast<std::size_t>(producers);
  SbqHtm q(cfg);

  constexpr std::uint64_t kPerProducer = 1200;
  std::vector<Element> storage;
  auto result =
      testutil::run_mpmc(q, producers, consumers, kPerProducer, storage);
  testutil::verify_mpmc(result, producers, kPerProducer);
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, SbqSweepTest,
    ::testing::Values(Param{1, 1, 1}, Param{1, 1, 44}, Param{2, 2, 2},
                      Param{2, 2, 44}, Param{4, 2, 4}, Param{2, 4, 44},
                      Param{6, 2, 8}, Param{3, 3, 3}, Param{5, 5, 8},
                      Param{8, 1, 8}, Param{1, 6, 44}),
    [](const ::testing::TestParamInfo<Param>& info) {
      return "p" + std::to_string(std::get<0>(info.param)) + "_c" +
             std::to_string(std::get<1>(info.param)) + "_B" +
             std::to_string(std::get<2>(info.param));
    });

// Structural properties checked quiescently after concurrent phases.

TEST(SbqStructureProperty, TailIndexNeverExceedsAppendedNodes) {
  constexpr int kProducers = 6;
  SbqHtm::Config cfg;
  cfg.max_enqueuers = kProducers;
  cfg.max_dequeuers = 1;
  SbqHtm q(cfg);
  constexpr std::uint64_t kPer = 2000;
  std::vector<Element> storage;
  auto result = testutil::run_mpmc(q, kProducers, 0, kPer, storage);
  (void)result;
  // With baskets forming, appended nodes <= total elements; indices are
  // consecutive so tail index == appended nodes.
  EXPECT_LE(q.tail_index(), static_cast<std::uint64_t>(kProducers) * kPer);
  EXPECT_GE(q.tail_index(), 1u);
  // Under real parallelism at least one basket must absorb >1 element. On a
  // single-hardware-thread host CAS contention may never materialize, so
  // only assert when the machine can actually run producers in parallel.
  if (std::thread::hardware_concurrency() > 1) {
    EXPECT_LT(q.tail_index(), static_cast<std::uint64_t>(kProducers) * kPer)
        << "no basket ever formed under 6-way contention";
  }
}

TEST(SbqStructureProperty, HeadNeverPassesTail) {
  SbqHtm::Config cfg;
  cfg.max_enqueuers = 2;
  cfg.max_dequeuers = 2;
  SbqHtm q(cfg);
  constexpr std::uint64_t kPer = 3000;
  std::vector<Element> storage;
  auto result = testutil::run_mpmc(q, 2, 2, kPer, storage);
  testutil::verify_mpmc(result, 2, kPer);
  EXPECT_LE(q.head_index(), q.tail_index());
}

TEST(SbqStructureProperty, DrainedQueueReportsEmptyForever) {
  SbqHtm::Config cfg;
  cfg.max_enqueuers = 3;
  cfg.max_dequeuers = 1;
  SbqHtm q(cfg);
  std::vector<Element> storage;
  auto result = testutil::run_mpmc(q, 3, 1, 500, storage);
  testutil::verify_mpmc(result, 3, 500);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(q.dequeue(0), nullptr);
  }
}

TEST(SbqStructureProperty, ReuseAcrossManyOperationsStaysBounded) {
  // Node reuse (§5.2.2) must keep the queue's footprint bounded when the
  // queue stays near-empty: enqueue/dequeue pairs should not grow the list.
  SbqHtm::Config cfg;
  cfg.max_enqueuers = 1;
  cfg.max_dequeuers = 1;
  SbqHtm q(cfg);
  Element e;
  for (int i = 0; i < 20000; ++i) {
    q.enqueue(&e, 0);
    ASSERT_EQ(q.dequeue(0), &e);
  }
  EXPECT_LE(q.node_count(), 4u);
}

}  // namespace
}  // namespace sbq
