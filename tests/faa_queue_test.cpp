// Tests for the FAA segment queue (WF-Queue/LCRQ family stand-in).
#include <gtest/gtest.h>

#include "queues/faa_queue.hpp"
#include "queues/queue_traits.hpp"
#include "queue_test_util.hpp"

namespace sbq {
namespace {

static_assert(ConcurrentQueue<FaaQueue<int>, int>);

TEST(FaaQueue, EmptyDequeueReturnsNull) {
  FaaQueue<int> q(2);
  EXPECT_EQ(q.dequeue(0), nullptr);
  EXPECT_EQ(q.dequeue(1), nullptr);
}

TEST(FaaQueue, FifoSingleThread) {
  FaaQueue<int> q(1);
  int vals[10];
  for (int i = 0; i < 10; ++i) q.enqueue(&vals[i], 0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(q.dequeue(0), &vals[i]);
  EXPECT_EQ(q.dequeue(0), nullptr);
}

TEST(FaaQueue, CrossesSegmentBoundaries) {
  // Segment size 4 forces frequent segment transitions and retirement.
  FaaQueue<int, 4> q(1);
  int vals[64];
  for (int i = 0; i < 64; ++i) q.enqueue(&vals[i], 0);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(q.dequeue(0), &vals[i]);
  EXPECT_EQ(q.dequeue(0), nullptr);
}

TEST(FaaQueue, AlternatingAcrossSegments) {
  FaaQueue<int, 4> q(1);
  int vals[100];
  for (int i = 0; i < 100; ++i) {
    q.enqueue(&vals[i], 0);
    EXPECT_EQ(q.dequeue(0), &vals[i]);
    EXPECT_EQ(q.dequeue(0), nullptr);
  }
}

TEST(FaaQueue, MpmcNoLossNoDupFifo) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr std::uint64_t kPerProducer = 5000;
  FaaQueue<testutil::Element, 64> q(kProducers + kConsumers);
  std::vector<testutil::Element> storage;
  auto result = testutil::run_mpmc(q, kProducers, kConsumers, kPerProducer,
                                   storage, /*single_id_space=*/true);
  testutil::verify_mpmc(result, kProducers, kPerProducer);
}

TEST(FaaQueue, ManyProducersOneConsumerGlobalOrderPerProducer) {
  constexpr int kProducers = 6;
  constexpr std::uint64_t kPerProducer = 3000;
  FaaQueue<testutil::Element, 128> q(kProducers + 1);
  std::vector<testutil::Element> storage;
  auto result =
      testutil::run_mpmc(q, kProducers, 1, kPerProducer, storage, true);
  testutil::verify_mpmc(result, kProducers, kPerProducer);
}

}  // namespace
}  // namespace sbq
