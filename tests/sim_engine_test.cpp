// Tests for the discrete-event engine and the coroutine task plumbing.
#include <gtest/gtest.h>

#include <vector>

#include "sim/coro.hpp"
#include "sim/engine.hpp"

namespace sbq::sim {
namespace {

TEST(Engine, EventsRunInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(30, [&] { order.push_back(3); });
  e.schedule(10, [&] { order.push_back(1); });
  e.schedule(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30u);
  EXPECT_EQ(e.events_processed(), 3u);
}

TEST(Engine, EqualTimestampsAreFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule(5, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, NestedScheduling) {
  Engine e;
  std::vector<Time> times;
  e.schedule(10, [&] {
    times.push_back(e.now());
    e.schedule(5, [&] { times.push_back(e.now()); });
  });
  e.run();
  EXPECT_EQ(times, (std::vector<Time>{10, 15}));
}

TEST(Engine, RunUntilStopsAtLimit) {
  Engine e;
  int ran = 0;
  e.schedule(10, [&] { ++ran; });
  e.schedule(100, [&] { ++ran; });
  EXPECT_FALSE(e.run_until(50));
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(e.run_until(1000));
  EXPECT_EQ(ran, 2);
}

TEST(Engine, ZeroDelayRunsAtCurrentTime) {
  Engine e;
  Time seen = 999;
  e.schedule(7, [&] {
    e.schedule(0, [&] { seen = e.now(); });
  });
  e.run();
  EXPECT_EQ(seen, 7u);
}

// --- coroutine Task tests ---

Task<int> answer() { co_return 42; }

Task<int> add(int a, int b) {
  const int x = co_await answer();
  co_return a + b + x - 42;
}

Task<void> driver(Engine& e, int* out) {
  struct Sleep {
    Engine& e;
    Time d;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      e.schedule(d, [h] { h.resume(); });
    }
    void await_resume() const noexcept {}
  };
  co_await Sleep{e, 10};
  *out = co_await add(20, 22);
  co_await Sleep{e, 5};
  *out += 1;
}

TEST(Coro, NestedTasksAndAwaitables) {
  Engine e;
  int out = 0;
  Task<void> t = driver(e, &out);
  auto h = t.release();
  bool done = false;
  h.promise().on_done = [&] { done = true; };
  e.schedule(0, [h] { h.resume(); });
  e.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(out, 43);
  EXPECT_EQ(e.now(), 15u);
  h.destroy();
}

TEST(Coro, TaskDestroyWithoutRunningIsSafe) {
  // A never-started lazy task must be destroyable without leaks/crashes.
  { Task<int> t = answer(); }
  SUCCEED();
}

}  // namespace
}  // namespace sbq::sim
