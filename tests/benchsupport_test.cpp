// Tests for the benchmark harness support: table/CSV formatting, option
// parsing, sweeps, and cycle calibration.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "benchsupport/sweep.hpp"
#include "benchsupport/table.hpp"

namespace sbq {
namespace {

TEST(Table, AlignedOutput) {
  Table t({"a", "long_column", "b"});
  t.add_row({std::string("1"), "2", "3"});
  t.add_row({std::string("100"), "x", "yyyy"});
  std::ostringstream os;
  t.print(os, /*csv=*/false);
  const std::string out = os.str();
  EXPECT_NE(out.find("long_column"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_NE(out.find("yyyy"), std::string::npos);
  // Header + separator + 2 data rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, CsvOutput) {
  Table t({"x", "y"});
  t.add_row({1.5, 2.25}, /*precision=*/2);
  std::ostringstream os;
  t.print(os, /*csv=*/true);
  EXPECT_EQ(os.str(), "x,y\n1.50,2.25\n");
}

TEST(Table, NumericPrecision) {
  Table t({"v"});
  t.add_row({3.14159}, 4);
  std::ostringstream os;
  t.print(os, true);
  EXPECT_NE(os.str().find("3.1416"), std::string::npos);
}

TEST(Table, RowSizeMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only one")}), std::invalid_argument);
}

TEST(Table, RowCount) {
  Table t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({std::string("1")});
  t.add_row({std::string("2")});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(BenchOptions, Defaults) {
  char prog[] = "bench";
  char* argv[] = {prog};
  const BenchOptions o = BenchOptions::parse(1, argv);
  EXPECT_FALSE(o.csv);
  EXPECT_EQ(o.seed, 42ull);
  EXPECT_TRUE(o.threads.empty());
  EXPECT_EQ(o.ops, 0ull);
  EXPECT_EQ(o.repeats, 0);
}

TEST(BenchOptions, ParsesAllFlags) {
  char prog[] = "bench";
  char csv[] = "--csv";
  char seed[] = "--seed", seedv[] = "7";
  char ops[] = "--ops", opsv[] = "1000";
  char rep[] = "--repeats", repv[] = "5";
  char thr[] = "--threads", thrv[] = "1,4,44";
  char* argv[] = {prog, csv, seed, seedv, ops, opsv, rep, repv, thr, thrv};
  const BenchOptions o = BenchOptions::parse(10, argv);
  EXPECT_TRUE(o.csv);
  EXPECT_EQ(o.seed, 7ull);
  EXPECT_EQ(o.ops, 1000ull);
  EXPECT_EQ(o.repeats, 5);
  EXPECT_EQ(o.threads, (std::vector<int>{1, 4, 44}));
}

TEST(BenchOptions, UnknownFlagThrows) {
  char prog[] = "bench";
  char bad[] = "--bogus";
  char* argv[] = {prog, bad};
  EXPECT_THROW(BenchOptions::parse(2, argv), std::invalid_argument);
}

TEST(BenchOptions, MissingValueThrows) {
  char prog[] = "bench";
  char seed[] = "--seed";
  char* argv[] = {prog, seed};
  EXPECT_THROW(BenchOptions::parse(2, argv), std::invalid_argument);
}

TEST(Sweeps, SingleSocketCoversPaperRange) {
  const auto sweep = default_single_socket_sweep();
  EXPECT_EQ(sweep.front(), 1);
  EXPECT_EQ(sweep.back(), 44);  // the Broadwell's hyperthread count
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GT(sweep[i], sweep[i - 1]) << "sweep must be increasing";
  }
}

TEST(Sweeps, DualSocketEvenTotals) {
  const auto sweep = default_dual_socket_sweep();
  EXPECT_EQ(sweep.back(), 88);
  for (int t : sweep) EXPECT_EQ(t % 2, 0) << "mixed sweep splits evenly";
}

TEST(Sweeps, CycleCalibration) {
  // 2.5 GHz Broadwell all-core turbo: 0.4 ns per cycle.
  EXPECT_DOUBLE_EQ(ns_per_cycle(), 0.4);
}

}  // namespace
}  // namespace sbq
