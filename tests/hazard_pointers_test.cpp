// Tests for the hazard-pointer reclamation scheme.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "reclaim/hazard_pointers.hpp"

namespace sbq {
namespace {

struct Node {
  int payload = 0;
  static inline std::atomic<int> freed{0};
};

struct CountingDeleter {
  void operator()(Node* n) const {
    Node::freed.fetch_add(1);
    delete n;
  }
};

using Hp = HazardPointers<Node, CountingDeleter>;

TEST(HazardPointers, RetiredNodesEventuallyFreed) {
  Node::freed.store(0);
  {
    Hp hp(2);
    for (int i = 0; i < 100; ++i) hp.retire(new Node, 0);
    // No hazards are set, so scans triggered by retire() free everything
    // past the threshold; the destructor frees the rest.
  }
  EXPECT_EQ(Node::freed.load(), 100);
}

TEST(HazardPointers, HazardBlocksFree) {
  Node::freed.store(0);
  {
    Hp hp(2);
    Node* protected_node = new Node;
    std::atomic<Node*> src{protected_node};
    EXPECT_EQ(hp.protect(src, 0, 0), protected_node);
    hp.retire(protected_node, 1);
    for (int i = 0; i < 200; ++i) hp.retire(new Node, 1);
    hp.flush(1);
    EXPECT_EQ(Node::freed.load(), 200);  // all but the protected node
    hp.clear(0);
  }
  EXPECT_EQ(Node::freed.load(), 201);
}

TEST(HazardPointers, ProtectValidates) {
  Hp hp(1);
  Node* a = new Node;
  Node* b = new Node;
  std::atomic<Node*> src{a};
  std::thread flipper([&] {
    for (int i = 0; i < 20000; ++i) src.store(i % 2 ? a : b);
  });
  for (int i = 0; i < 2000; ++i) {
    Node* p = hp.protect(src, 0, 0);
    EXPECT_TRUE(p == a || p == b);
  }
  flipper.join();
  hp.clear(0);
  hp.retire(a, 0);
  hp.retire(b, 0);
}

TEST(HazardPointers, PerThreadSlotsIndependent) {
  Node::freed.store(0);
  {
    Hp hp(3);
    Node* n0 = new Node;
    Node* n1 = new Node;
    std::atomic<Node*> s0{n0}, s1{n1};
    hp.protect(s0, 0, 0);
    hp.protect(s1, 1, 1);
    hp.retire(n0, 2);
    hp.retire(n1, 2);
    for (int i = 0; i < 100; ++i) hp.retire(new Node, 2);
    hp.flush(2);
    EXPECT_EQ(Node::freed.load(), 100);
    hp.clear(0);
    for (int i = 0; i < 100; ++i) hp.retire(new Node, 2);
    hp.flush(2);
    EXPECT_EQ(Node::freed.load(), 201);  // n0 now freed, n1 still protected
    hp.clear(1);
  }
  EXPECT_EQ(Node::freed.load(), 202);
}

TEST(HazardPointers, ConcurrentRetireStress) {
  Node::freed.store(0);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  {
    Hp hp(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          Node* n = new Node;
          std::atomic<Node*> src{n};
          hp.protect(src, t, 0);   // briefly protect
          hp.clear(t);
          hp.retire(n, t);
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  EXPECT_EQ(Node::freed.load(), kThreads * kPerThread);
}

}  // namespace
}  // namespace sbq
