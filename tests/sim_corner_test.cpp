// Targeted tests for the trickiest protocol corners: the deferred
// invalidation path (Inv racing ahead of owner-forwarded data), waiter
// chains behind a core's own pending request, TxCAS retrying over its own
// aborted GetM, and reads during long hand-off chains.
#include <gtest/gtest.h>

#include <memory>

#include "sim/machine.hpp"

namespace sbq::sim {
namespace {

MachineConfig small_machine(int cores, int sockets = 1) {
  MachineConfig cfg;
  cfg.cores = cores;
  cfg.sockets = sockets;
  return cfg;
}

TEST(SimCorner, DeferredInvReaderStillObservesCoherentValue) {
  // Construct the race: reader R's GetS is serviced by a Fwd-GetS to a slow
  // remote owner, while a writer's GetM (processed after R's GetS) sends R
  // an Inv that arrives before the owner's data. R's load must return the
  // pre-write value (its read is serialized before the write), the line
  // must end Invalid at R, and the writer must get R's ack.
  MachineConfig cfg = small_machine(4, 2);
  cfg.inter_latency = 300;  // slow cross-socket data path
  Machine m(cfg);
  const Addr x = m.alloc();

  // Owner on remote socket holds the line Modified.
  m.spawn([](Machine& m, Addr x) -> Task<void> {
    co_await m.core(2).store(x, 10);  // core 2 = socket 1
  }(m, x));
  m.run();

  Value reader_saw = 0;
  m.spawn([](Machine& m, Addr x, Value* saw) -> Task<void> {
    // Reader on socket 0: GetS -> Fwd-GetS to core 2 -> data crosses back
    // (slow). Meanwhile the writer below invalidates.
    *saw = co_await m.core(0).load(x);
  }(m, x, &reader_saw));
  m.spawn([](Machine& m, Addr x) -> Task<void> {
    // Writer on socket 0 arrives just after the reader's GetS.
    co_await m.core(1).think(60);
    co_await m.core(1).store(x, 20);
  }(m, x));
  m.run();

  EXPECT_TRUE(reader_saw == 10 || reader_saw == 20) << reader_saw;
  Value after = 0;
  m.spawn([](Machine& m, Addr x, Value* out) -> Task<void> {
    *out = co_await m.core(3).load(x);
  }(m, x, &after));
  m.run();
  EXPECT_EQ(after, 20u);
}

TEST(SimCorner, WaiterChainBehindOwnPendingRequest) {
  // A core's second operation on an address must wait for its first to
  // settle (the waiters_ path): issue store then immediately load from the
  // same coroutine; then from contention, force a txcas retry over its own
  // aborted GetM.
  Machine m(small_machine(2));
  const Addr x = m.alloc();
  m.spawn([](Machine& m, Addr x) -> Task<void> {
    co_await m.core(0).store(x, 1);
    EXPECT_EQ(co_await m.core(0).load(x), 1u);  // hit after store completes
    co_await m.core(0).store(x, 2);
    EXPECT_EQ(co_await m.core(1).load(x), 2u);
  }(m, x));
  m.run();
}

TEST(SimCorner, TxCasRetryOverOwnAbortedGetM) {
  // Two TxCAS writers in lockstep: both enter the write phase, the loser
  // aborts via Inv/FwdGetM with its GetM still in flight, retries, and its
  // retry must wait for (then reuse) the arriving ownership. The final
  // value must reflect exactly one successful CAS per round.
  Machine m(small_machine(2));
  const Addr x = m.alloc();
  auto barrier = std::make_shared<SimBarrier>(m.engine(), 2);
  for (int c = 0; c < 2; ++c) {
    m.spawn([](Machine& m, int c, Addr x,
               std::shared_ptr<SimBarrier> b) -> Task<void> {
      TxCasConfig tx;
      tx.intra_txn_delay = 50;  // identical delays -> write-phase collisions
      tx.post_abort_delay = 40;
      for (Value round = 0; round < 30; ++round) {
        co_await b->arrive_and_wait();
        co_await m.core(c).txcas(x, round, round + 1, tx);
        co_await b->arrive_and_wait();
      }
    }(m, c, x, barrier));
  }
  m.run();
  Value final = 0;
  m.spawn([](Machine& m, Addr x, Value* out) -> Task<void> {
    *out = co_await m.core(0).load(x);
  }(m, x, &final));
  m.run();
  EXPECT_EQ(final, 30u);
}

TEST(SimCorner, ReadDuringLongHandoffChainGetsSerializedValue) {
  // 6 writers pile GetMs onto one line; a reader's GetS lands mid-chain.
  // The read must return one of the serialized values (not garbage or a
  // torn intermediate) and the chain must still complete exactly.
  constexpr int kWriters = 6;
  Machine m(small_machine(kWriters + 1));
  const Addr x = m.alloc();
  for (int c = 0; c < kWriters; ++c) {
    m.spawn([](Machine& m, int c, Addr x) -> Task<void> {
      co_await m.core(c).think(Time(1 + c));
      for (int i = 0; i < 10; ++i) co_await m.core(c).faa(x, 1);
    }(m, c, x));
  }
  Value observed = 0;
  m.spawn([](Machine& m, Addr x, Value* out) -> Task<void> {
    co_await m.core(kWriters).think(200);  // land mid-chain
    *out = co_await m.core(kWriters).load(x);
  }(m, x, &observed));
  m.run();
  EXPECT_LE(observed, static_cast<Value>(kWriters) * 10);
  Value final = 0;
  m.spawn([](Machine& m, Addr x, Value* out) -> Task<void> {
    *out = co_await m.core(kWriters).load(x);
  }(m, x, &final));
  m.run();
  EXPECT_EQ(final, static_cast<Value>(kWriters) * 10);
}

TEST(SimCorner, StoreToLineOwnedElsewhereThenReadBack) {
  // Ping-pong writes between two cores with interleaved reads from both:
  // every read observes the most recent write (per the serialized order).
  Machine m(small_machine(2));
  const Addr x = m.alloc();
  m.spawn([](Machine& m, Addr x) -> Task<void> {
    for (Value i = 0; i < 20; ++i) {
      co_await m.core(static_cast<int>(i % 2)).store(x, i);
      EXPECT_EQ(co_await m.core(static_cast<int>((i + 1) % 2)).load(x), i);
    }
  }(m, x));
  m.run();
}

TEST(SimCorner, ThinkZeroStillAdvancesTime) {
  Machine m(small_machine(1));
  Time before = 0, after = 0;
  m.spawn([](Machine& m, Time* b, Time* a) -> Task<void> {
    *b = m.engine().now();
    co_await m.core(0).think(0);
    *a = m.engine().now();
  }(m, &before, &after));
  m.run();
  EXPECT_GT(after, before);  // clamped to >= 1 cycle (no zero-time loops)
}

}  // namespace
}  // namespace sbq::sim
