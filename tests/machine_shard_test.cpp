// Serial-vs-sharded equivalence for the partitioned machine: every
// evaluated queue, run at 2 sockets with {2, 4} machine threads, must
// produce results and metrics identical to the serial twin (same
// dir_slices/sockets, machine_threads=1) — the conservative-window merge
// fixes the event order, so who runs the slices must not be observable.
// Also covers the sharded machine's refusal surface: snapshot() and
// check_invariants are serial-only, while the serial twin snapshots and
// forks byte-identically.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "benchsupport/metrics_json.hpp"
#include "sim_queue_bench_util.hpp"

namespace sbq::bench {
namespace {

// The shard grid the ISSUE prescribes: 2 sockets, 4 directory slices (one
// per pair of cores), per-core arenas so mid-run allocation is slice-local.
sim::MachineConfig shard_config(int machine_threads) {
  sim::MachineConfig mcfg;
  mcfg.cores = 8;
  mcfg.sockets = 2;
  mcfg.dir_slices = 4;
  mcfg.alloc_arenas = true;
  mcfg.machine_threads = machine_threads;
  return mcfg;
}

// Mixed workload so both the enqueue and dequeue paths cross slices.
WorkloadSpec shard_spec(std::uint64_t seed) {
  WorkloadSpec spec;
  spec.kind = Workload::kMixed;
  spec.producers = 4;
  spec.consumers = 4;
  spec.ops_per_thread = 25;
  spec.prefill = 16;
  spec.seed = seed;
  return spec;
}

// The only legitimate differences between a sharded snapshot and its serial
// twin are the sharding-bookkeeping fields themselves; everything else —
// protocol/HTM/basket counters, message totals, event counts, final time —
// must match exactly. Normalize those fields away and compare the full
// serialized form so a new counter can't silently escape the check.
std::string normalized_metrics_dump(sim::MetricsSnapshot snap) {
  snap.machine_threads = 1;
  snap.per_slice_events.clear();
  return metrics_to_json(snap).dump(-1);
}

void expect_same_cell(const SimRunResult& serial, const SimRunResult& sharded,
                      const char* what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(serial.enq_ops, sharded.enq_ops);
  EXPECT_EQ(serial.deq_ops, sharded.deq_ops);
  // Deterministic simulation: the derived doubles must be bit-identical.
  EXPECT_EQ(serial.enq_latency_cycles, sharded.enq_latency_cycles);
  EXPECT_EQ(serial.deq_latency_cycles, sharded.deq_latency_cycles);
  EXPECT_EQ(serial.duration_cycles, sharded.duration_cycles);
  EXPECT_EQ(normalized_metrics_dump(serial.metrics),
            normalized_metrics_dump(sharded.metrics));
}

TEST(MachineShard, AllQueuesMatchSerialTwinAt2And4Threads) {
  for (QueueKind kind : evaluated_queue_kinds()) {
    const WorkloadSpec spec = shard_spec(/*seed=*/11);
    const SimRunResult serial =
        run_queue_workload(kind, shard_config(/*machine_threads=*/1), spec);
    ASSERT_GT(serial.enq_ops, 0u) << queue_kind_name(kind);
    for (int mt : {2, 4}) {
      const SimRunResult sharded =
          run_queue_workload(kind, shard_config(mt), spec);
      const std::string what =
          std::string(queue_kind_name(kind)) + " mt=" + std::to_string(mt);
      expect_same_cell(serial, sharded, what.c_str());
      // The sharded run must also *report* its sharding: thread count and
      // one event counter per slice, summing to the machine-wide total.
      EXPECT_EQ(sharded.metrics.machine_threads, mt) << what;
      ASSERT_EQ(sharded.metrics.per_slice_events.size(), 4u) << what;
      std::uint64_t sum = 0;
      for (std::uint64_t e : sharded.metrics.per_slice_events) sum += e;
      EXPECT_EQ(sum, sharded.metrics.events) << what;
    }
  }
}

TEST(MachineShard, ShardedRunIsDeterministic) {
  for (QueueKind kind : evaluated_queue_kinds()) {
    const WorkloadSpec spec = shard_spec(/*seed=*/23);
    const SimRunResult a = run_queue_workload(kind, shard_config(4), spec);
    const SimRunResult b = run_queue_workload(kind, shard_config(4), spec);
    expect_same_cell(a, b, queue_kind_name(kind));
    // Run-to-run, even the per-slice split must be stable.
    EXPECT_EQ(a.metrics.per_slice_events, b.metrics.per_slice_events)
        << queue_kind_name(kind);
  }
}

TEST(MachineShard, SnapshotRefusedWhenSharded) {
  bool checked = false;
  run_queue_workload(QueueKind::kSbqHtm, shard_config(2), shard_spec(5),
                     [&](sim::Machine& m) {
                       EXPECT_THROW(m.snapshot(), std::runtime_error);
                       checked = true;
                     });
  EXPECT_TRUE(checked);
}

TEST(MachineShard, SerialTwinForksByteIdenticallyToColdStart) {
  // The documented escape hatch for warm repeats under sharding: snapshot
  // the serial twin (machine_threads=1, same dir_slices) and fork from it.
  for (QueueKind kind : {QueueKind::kSbqHtm, QueueKind::kBqOriginal}) {
    const sim::MachineConfig mcfg = shard_config(/*machine_threads=*/1);
    const WorkloadSpec spec = shard_spec(/*seed=*/31);
    const SimRunResult cold = run_queue_workload(kind, mcfg, spec);
    const WarmedWorkload warmed(kind, mcfg, spec);
    const SimRunResult forked = warmed.run_repeat(spec);
    expect_same_cell(cold, forked, queue_kind_name(kind));
  }
}

TEST(MachineShard, CheckInvariantsRefusedShardedButChecksSerialTwin) {
  sim::MachineConfig mcfg = shard_config(/*machine_threads=*/2);
  mcfg.check_invariants = true;
  EXPECT_THROW(sim::Machine{mcfg}, std::runtime_error);
  // On the serial twin the checker walks every directory slice's line table
  // — a run with it enabled must complete without tripping.
  mcfg.machine_threads = 1;
  const SimRunResult checked =
      run_queue_workload(QueueKind::kSbqCas, mcfg, shard_spec(7));
  EXPECT_GT(checked.enq_ops, 0u);
}

TEST(MachineShard, TraceAndJitterRefusedWhenSharded) {
  sim::MachineConfig traced = shard_config(/*machine_threads=*/2);
  traced.record_trace = true;
  EXPECT_THROW(sim::Machine{traced}, std::runtime_error);

  sim::MachineConfig jittered = shard_config(/*machine_threads=*/2);
  jittered.fault_plan.enabled = true;
  jittered.fault_plan.message_jitter_rate = 0.5;
  jittered.fault_plan.max_message_jitter = 3;
  EXPECT_THROW(sim::Machine{jittered}, std::runtime_error);
}

}  // namespace
}  // namespace sbq::bench
