// Correctness of the simulated SBQ under every configuration the benches
// exercise: the uarch fix, fixed basket capacity 44, striped extraction,
// SBQ-CAS, and two-socket placements. Each run checks exactly-once
// delivery and per-producer FIFO.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "simqueue/sim_sbq.hpp"

namespace sbq::simq {
namespace {

constexpr Value kStride = 1u << 20;
Value elem(int p, Value i) { return kFirstElement + Value(p) * kStride + i; }

struct RunConfig {
  int producers = 3;
  int consumers = 3;
  int sockets = 1;
  int basket_capacity = 0;
  int stripes = 1;
  SbqVariant variant = SbqVariant::kHtm;
  bool uarch_fix = false;
};

void run_and_verify(const RunConfig& rc) {
  sim::MachineConfig mcfg;
  mcfg.cores = rc.producers + rc.consumers;
  mcfg.sockets = rc.sockets;
  mcfg.uarch_fix = rc.uarch_fix;
  sim::Machine m(mcfg);
  SimSbq::Config qc;
  qc.enqueuers = rc.producers;
  qc.dequeuers = rc.consumers;
  qc.basket_capacity = rc.basket_capacity;
  qc.variant = rc.variant;
  qc.extraction_stripes = rc.stripes;
  SimSbq q(m, qc);

  constexpr Value kPer = 50;
  auto remaining = std::make_shared<Value>(Value(rc.producers) * kPer);
  auto got = std::make_shared<std::vector<std::vector<Value>>>(
      static_cast<std::size_t>(rc.consumers));

  for (int p = 0; p < rc.producers; ++p) {
    m.spawn([](Machine& m, SimSbq& q, int p) -> Task<void> {
      co_await m.core(p).think(Time(1 + p * 5));
      for (Value i = 0; i < kPer; ++i) {
        co_await q.enqueue(m.core(p), elem(p, i), p);
      }
    }(m, q, p));
  }
  for (int ci = 0; ci < rc.consumers; ++ci) {
    m.spawn([](Machine& m, SimSbq& q, int core, int id,
               std::shared_ptr<Value> remaining,
               std::shared_ptr<std::vector<std::vector<Value>>> got)
                -> Task<void> {
      co_await m.core(core).think(Time(3 + id * 5));
      while (*remaining > 0) {
        const Value e = co_await q.dequeue(m.core(core), id);
        if (e == 0) {
          co_await m.core(core).think(40);
          continue;
        }
        (*got)[static_cast<std::size_t>(id)].push_back(e);
        --*remaining;
      }
    }(m, q, rc.producers + ci, ci, remaining, got));
  }
  m.run();

  std::map<Value, int> seen;
  for (const auto& consumer : *got) {
    std::map<int, Value> last;
    for (Value e : consumer) {
      ++seen[e];
      const int p = static_cast<int>((e - kFirstElement) / kStride);
      const Value s = (e - kFirstElement) % kStride;
      auto it = last.find(p);
      if (it != last.end()) EXPECT_GT(s, it->second) << "FIFO violated";
      last[p] = s;
    }
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(rc.producers) * kPer);
  for (const auto& [e, count] : seen) {
    EXPECT_EQ(count, 1) << "duplicate " << e;
  }
}

TEST(SimSbqVariants, UarchFixOn) {
  run_and_verify({.sockets = 2, .uarch_fix = true});
}

TEST(SimSbqVariants, FixedBasket44TwoSockets) {
  run_and_verify({.producers = 4, .consumers = 4, .sockets = 2,
                  .basket_capacity = 44});
}

TEST(SimSbqVariants, StripedExtraction2) {
  run_and_verify({.producers = 4, .consumers = 4, .stripes = 2});
}

TEST(SimSbqVariants, StripedExtraction4Capacity44) {
  run_and_verify({.producers = 6, .consumers = 4, .basket_capacity = 44,
                  .stripes = 4});
}

TEST(SimSbqVariants, StripesClampedToEnqueuers) {
  run_and_verify({.producers = 2, .consumers = 2, .stripes = 8});
}

TEST(SimSbqVariants, CasVariantCrossSocket) {
  run_and_verify({.producers = 4, .consumers = 4, .sockets = 2,
                  .variant = SbqVariant::kCas});
}

TEST(SimSbqVariants, HtmVariantCrossSocketWithFixAndStripes) {
  run_and_verify({.producers = 4, .consumers = 4, .sockets = 2,
                  .basket_capacity = 44, .stripes = 4, .uarch_fix = true});
}

TEST(SimSbqVariants, SingleProducerManyConsumers) {
  run_and_verify({.producers = 1, .consumers = 6});
}

TEST(SimSbqVariants, ManyProducersSingleConsumer) {
  run_and_verify({.producers = 6, .consumers = 1, .basket_capacity = 44});
}

TEST(SimSbqVariants, UarchFixHighConcurrencyNoDeadlock) {
  // Regression: a Fwd-GetS ordered before a writer's O->M upgrade used to
  // be fix-stalled at the writer while the reader's deferred Inv-Ack was
  // exactly what the writer's commit awaited — a deadlock that only
  // manifests at high concurrency. run_and_verify asserts every element is
  // dequeued, which fails if the machine wedges.
  run_and_verify({.producers = 10, .consumers = 10, .sockets = 2,
                  .basket_capacity = 44, .uarch_fix = true});
}

}  // namespace
}  // namespace sbq::simq
