// Shared helpers for queue correctness tests: element tagging, multi-
// producer/multi-consumer harness with no-loss/no-duplication/FIFO-per-
// producer verification.
//
// FIFO-per-producer is the classic testable consequence of queue
// linearizability: if one producer enqueues a then b (sequentially), no
// consumer may observe b before a *when the two dequeues are themselves
// ordered*. We verify the strongest cheaply-checkable form: for each
// producer, the subsequence of its elements in each single consumer's
// output is increasing, and across all consumers each element appears
// exactly once.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "common/barrier.hpp"

namespace sbq::testutil {

struct Element {
  int producer;
  std::uint64_t seq;
};

struct MpmcResult {
  std::vector<std::vector<Element*>> per_consumer;  // dequeue order per consumer
  std::uint64_t total_dequeued = 0;
};

// Runs `producers` enqueuer threads each pushing `per_producer` tagged
// elements and `consumers` dequeuer threads that pop until all elements are
// accounted for. Queue must expose enqueue(T*, id) / dequeue(id) with
// separate id spaces (SBQ convention). For queues with a single id space,
// pass single_id_space = true: consumer ids then follow producer ids.
template <typename Queue>
MpmcResult run_mpmc(Queue& queue, int producers, int consumers,
                    std::uint64_t per_producer,
                    std::vector<Element>& storage,
                    bool single_id_space = false) {
  storage.resize(static_cast<std::size_t>(producers) * per_producer);
  std::atomic<std::uint64_t> remaining{static_cast<std::uint64_t>(producers) *
                                       per_producer};
  SpinBarrier barrier(static_cast<std::size_t>(producers + consumers));
  MpmcResult result;
  result.per_consumer.resize(static_cast<std::size_t>(consumers));

  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      barrier.arrive_and_wait();
      for (std::uint64_t i = 0; i < per_producer; ++i) {
        Element* e = &storage[static_cast<std::size_t>(p) * per_producer + i];
        e->producer = p;
        e->seq = i;
        queue.enqueue(e, p);
      }
    });
  }
  for (int c = 0; c < consumers; ++c) {
    threads.emplace_back([&, c] {
      const int id = single_id_space ? producers + c : c;
      barrier.arrive_and_wait();
      auto& got = result.per_consumer[static_cast<std::size_t>(c)];
      while (remaining.load(std::memory_order_acquire) > 0) {
        Element* e = static_cast<Element*>(queue.dequeue(id));
        if (e == nullptr) continue;  // transiently empty
        got.push_back(e);
        remaining.fetch_sub(1, std::memory_order_acq_rel);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (const auto& v : result.per_consumer) result.total_dequeued += v.size();
  return result;
}

// Verifies: exactly-once delivery of every element, and per-producer FIFO
// within each consumer's local dequeue order.
inline void verify_mpmc(const MpmcResult& result, int producers,
                        std::uint64_t per_producer) {
  const std::uint64_t expected =
      static_cast<std::uint64_t>(producers) * per_producer;
  ASSERT_EQ(result.total_dequeued, expected);

  std::map<std::pair<int, std::uint64_t>, int> seen;
  for (const auto& consumer : result.per_consumer) {
    std::vector<std::uint64_t> last_seq(static_cast<std::size_t>(producers));
    std::vector<bool> seen_any(static_cast<std::size_t>(producers), false);
    for (const Element* e : consumer) {
      ASSERT_GE(e->producer, 0);
      ASSERT_LT(e->producer, producers);
      ASSERT_LT(e->seq, per_producer);
      ++seen[{e->producer, e->seq}];
      auto idx = static_cast<std::size_t>(e->producer);
      if (seen_any[idx]) {
        EXPECT_GT(e->seq, last_seq[idx])
            << "per-producer FIFO violated for producer " << e->producer;
      }
      seen_any[idx] = true;
      last_seq[idx] = e->seq;
    }
  }
  EXPECT_EQ(seen.size(), expected) << "missing elements";
  for (const auto& [key, count] : seen) {
    EXPECT_EQ(count, 1) << "element duplicated: producer " << key.first
                        << " seq " << key.second;
  }
}

}  // namespace sbq::testutil
