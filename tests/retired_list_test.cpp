// Tests for the index-based retired-list reclamation scheme (Algorithm 7).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "reclaim/retired_list.hpp"

namespace sbq {
namespace {

struct Node {
  std::atomic<Node*> next{nullptr};
  std::uint64_t index = 0;
  static inline std::atomic<int> freed{0};
};

struct CountingDeleter {
  void operator()(Node* n) const {
    Node::freed.fetch_add(1);
    delete n;
  }
};

using List = RetiredList<Node, CountingDeleter>;

// Builds a chain n0 -> n1 -> ... -> n{count-1} with consecutive indices.
std::vector<Node*> make_chain(int count) {
  std::vector<Node*> nodes;
  for (int i = 0; i < count; ++i) {
    Node* n = new Node;
    n->index = static_cast<std::uint64_t>(i);
    if (!nodes.empty()) nodes.back()->next.store(n);
    nodes.push_back(n);
  }
  return nodes;
}

TEST(RetiredList, FreesUpToHeadWhenUnprotected) {
  Node::freed.store(0);
  auto nodes = make_chain(5);
  List list(nodes[0], 2);
  // Head has advanced to nodes[3]: nodes 0..2 are retired and reclaimable.
  list.free_nodes(nodes[3]);
  EXPECT_EQ(Node::freed.load(), 3);
  // Remaining chain is freed at teardown.
  list.drain_all();
  EXPECT_EQ(Node::freed.load(), 5);
}

TEST(RetiredList, ProtectorBlocksReclamation) {
  Node::freed.store(0);
  auto nodes = make_chain(6);
  List list(nodes[0], 2);
  std::atomic<Node*> src{nodes[2]};
  Node* protected_node = list.protect(src, 0);
  EXPECT_EQ(protected_node, nodes[2]);

  list.free_nodes(nodes[5]);
  // Only nodes with index < 2 may be freed.
  EXPECT_EQ(Node::freed.load(), 2);

  list.unprotect(0);
  list.free_nodes(nodes[5]);
  EXPECT_EQ(Node::freed.load(), 5);  // up to (not incl.) the head at idx 5
  list.drain_all();
  EXPECT_EQ(Node::freed.load(), 6);
}

TEST(RetiredList, MinimumOverAllProtectors) {
  Node::freed.store(0);
  auto nodes = make_chain(8);
  List list(nodes[0], 3);
  std::atomic<Node*> s1{nodes[4]}, s2{nodes[1]};
  list.protect(s1, 0);
  list.protect(s2, 2);  // min protected index = 1
  list.free_nodes(nodes[7]);
  EXPECT_EQ(Node::freed.load(), 1);  // only node 0
  list.unprotect(2);
  list.free_nodes(nodes[7]);
  EXPECT_EQ(Node::freed.load(), 4);  // nodes 0..3
  list.unprotect(0);
  list.drain_all();
  EXPECT_EQ(Node::freed.load(), 8);
}

TEST(RetiredList, NeverFreesPastHead) {
  Node::freed.store(0);
  auto nodes = make_chain(4);
  List list(nodes[0], 1);
  list.free_nodes(nodes[0]);  // head is still the sentinel: nothing to free
  EXPECT_EQ(Node::freed.load(), 0);
  list.drain_all();
  EXPECT_EQ(Node::freed.load(), 4);
}

TEST(RetiredList, ProtectValidatesSnapshot) {
  // protect() must re-read until the announcement matches the source, so a
  // concurrent swing of the source pointer is never missed.
  auto nodes = make_chain(2);
  List list(nodes[0], 1);
  std::atomic<Node*> src{nodes[0]};
  std::thread flipper([&] {
    for (int i = 0; i < 10000; ++i) {
      src.store(nodes[i % 2], std::memory_order_release);
    }
  });
  for (int i = 0; i < 1000; ++i) {
    Node* p = list.protect(src, 0);
    // The protected value must be one of the two nodes, and at the moment
    // protect returned it matched src at some point in its execution.
    EXPECT_TRUE(p == nodes[0] || p == nodes[1]);
    list.unprotect(0);
  }
  flipper.join();
  list.drain_all();
}

TEST(RetiredList, MutualExclusionViaSwap) {
  // Concurrent free_nodes calls must not double-free. We hammer free_nodes
  // from two threads while the protectors are empty.
  Node::freed.store(0);
  auto nodes = make_chain(100);
  List list(nodes[0], 2);
  Node* head = nodes[99];
  std::thread a([&] {
    for (int i = 0; i < 50; ++i) list.free_nodes(head);
  });
  std::thread b([&] {
    for (int i = 0; i < 50; ++i) list.free_nodes(head);
  });
  a.join();
  b.join();
  EXPECT_EQ(Node::freed.load(), 99);  // everything but the head
  list.drain_all();
  EXPECT_EQ(Node::freed.load(), 100);
}

}  // namespace
}  // namespace sbq
