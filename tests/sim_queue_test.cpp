// Correctness tests for the queue algorithms running on the coherence
// simulator: FIFO in single-thread use, and no-loss/no-duplication plus
// per-producer FIFO under simulated concurrency, for all five queues
// (SBQ-HTM, SBQ-CAS, FAA, MS, BQ-Original, CC).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "simqueue/sim_baskets_queue.hpp"
#include "simqueue/sim_cc_queue.hpp"
#include "simqueue/sim_faa_queue.hpp"
#include "simqueue/sim_ms_queue.hpp"
#include "simqueue/sim_sbq.hpp"

namespace sbq::simq {
namespace {

// Element tagging: element = kFirstElement + producer * kSeqStride + seq.
constexpr Value kSeqStride = 1u << 20;
Value make_elem(int producer, Value seq) {
  return kFirstElement + static_cast<Value>(producer) * kSeqStride + seq;
}
int elem_producer(Value e) {
  return static_cast<int>((e - kFirstElement) / kSeqStride);
}
Value elem_seq(Value e) { return (e - kFirstElement) % kSeqStride; }

// Generic MPMC run over the simulator. QueueT must expose
// enqueue(Core&, Value, id) and dequeue(Core&, id) tasks.
template <typename QueueT>
void run_mpmc_sim(QueueT& q, Machine& m, int producers, int consumers,
                  Value per_producer, bool single_id_space,
                  std::vector<std::vector<Value>>* per_consumer_out) {
  auto remaining =
      std::make_shared<Value>(static_cast<Value>(producers) * per_producer);
  per_consumer_out->assign(static_cast<std::size_t>(consumers), {});
  for (int p = 0; p < producers; ++p) {
    m.spawn([](Machine& m, QueueT& q, int p, Value n) -> Task<void> {
      co_await m.core(p).think(static_cast<Time>(1 + p * 3));
      for (Value i = 0; i < n; ++i) {
        co_await q.enqueue(m.core(p), make_elem(p, i), p);
      }
    }(m, q, p, per_producer));
  }
  for (int ci = 0; ci < consumers; ++ci) {
    const int core = producers + ci;
    const int id = single_id_space ? producers + ci : ci;
    m.spawn([](Machine& m, QueueT& q, int core, int id,
               std::shared_ptr<Value> remaining,
               std::vector<Value>* out) -> Task<void> {
      co_await m.core(core).think(static_cast<Time>(1 + core * 3));
      while (*remaining > 0) {
        const Value e = co_await q.dequeue(m.core(core), id);
        if (e == 0) {
          co_await m.core(core).think(50);
          continue;
        }
        out->push_back(e);
        --*remaining;
      }
    }(m, q, core, id, remaining,
      &(*per_consumer_out)[static_cast<std::size_t>(ci)]));
  }
  m.run();
  EXPECT_EQ(*remaining, 0u);
}

void verify_mpmc_sim(const std::vector<std::vector<Value>>& per_consumer,
                     int producers, Value per_producer) {
  std::map<std::pair<int, Value>, int> seen;
  for (const auto& consumer : per_consumer) {
    std::vector<Value> last_seq(static_cast<std::size_t>(producers), 0);
    std::vector<bool> any(static_cast<std::size_t>(producers), false);
    for (Value e : consumer) {
      const int p = elem_producer(e);
      const Value s = elem_seq(e);
      ASSERT_GE(p, 0);
      ASSERT_LT(p, producers);
      ASSERT_LT(s, per_producer);
      ++seen[{p, s}];
      const auto idx = static_cast<std::size_t>(p);
      if (any[idx]) {
        EXPECT_GT(s, last_seq[idx]) << "per-producer FIFO violated";
      }
      any[idx] = true;
      last_seq[idx] = s;
    }
  }
  EXPECT_EQ(seen.size(),
            static_cast<std::size_t>(producers) * per_producer);
  for (const auto& [key, count] : seen) {
    EXPECT_EQ(count, 1) << "duplicate element p=" << key.first
                        << " seq=" << key.second;
  }
}

sim::MachineConfig machine_for(int cores) {
  sim::MachineConfig cfg;
  cfg.cores = cores;
  return cfg;
}

// ---- single-thread FIFO for each queue ----

template <typename QueueT>
void fifo_single_thread(QueueT& q, Machine& m, int n) {
  m.spawn([](Machine& m, QueueT& q, int n) -> Task<void> {
    for (int i = 0; i < n; ++i) {
      co_await q.enqueue(m.core(0), make_elem(0, static_cast<Value>(i)), 0);
    }
    for (int i = 0; i < n; ++i) {
      const Value e = co_await q.dequeue(m.core(0), 0);
      EXPECT_EQ(e, make_elem(0, static_cast<Value>(i)));
    }
    EXPECT_EQ(co_await q.dequeue(m.core(0), 0), 0u);
  }(m, q, n));
  m.run();
}

TEST(SimSbqQueue, FifoSingleThread) {
  Machine m(machine_for(1));
  SimSbq q(m, {.enqueuers = 1, .dequeuers = 1});
  fifo_single_thread(q, m, 40);
}

TEST(SimSbqQueue, FifoSingleThreadCasVariant) {
  Machine m(machine_for(1));
  SimSbq q(m, {.enqueuers = 1, .dequeuers = 1, .variant = SbqVariant::kCas});
  fifo_single_thread(q, m, 40);
}

TEST(SimFaaQueueT, FifoSingleThread) {
  Machine m(machine_for(1));
  SimFaaQueue q(m, {});
  fifo_single_thread(q, m, 40);
}

TEST(SimMsQueueT, FifoSingleThread) {
  Machine m(machine_for(1));
  SimMsQueue q(m, {});
  fifo_single_thread(q, m, 40);
}

TEST(SimBasketsQueueT, FifoSingleThread) {
  Machine m(machine_for(1));
  SimBasketsQueue q(m, {});
  q.set_dequeuers(1);
  fifo_single_thread(q, m, 40);
}

TEST(SimCcQueueT, FifoSingleThread) {
  Machine m(machine_for(1));
  SimCcQueue q(m, {.threads = 1});
  fifo_single_thread(q, m, 40);
}

// ---- MPMC for each queue ----

TEST(SimSbqQueue, MpmcHtm) {
  constexpr int kP = 4, kC = 3;
  Machine m(machine_for(kP + kC));
  SimSbq q(m, {.enqueuers = kP, .dequeuers = kC});
  std::vector<std::vector<Value>> got;
  run_mpmc_sim(q, m, kP, kC, 60, /*single_id_space=*/false, &got);
  verify_mpmc_sim(got, kP, 60);
}

TEST(SimSbqQueue, MpmcCas) {
  constexpr int kP = 4, kC = 3;
  Machine m(machine_for(kP + kC));
  SimSbq q(m, {.enqueuers = kP, .dequeuers = kC, .variant = SbqVariant::kCas});
  std::vector<std::vector<Value>> got;
  run_mpmc_sim(q, m, kP, kC, 60, false, &got);
  verify_mpmc_sim(got, kP, 60);
}

TEST(SimSbqQueue, MpmcHtmFixedBasket44) {
  // The paper's configuration: B fixed at 44, fewer live enqueuers.
  constexpr int kP = 3, kC = 2;
  Machine m(machine_for(kP + kC));
  SimSbq q(m, {.enqueuers = kP, .dequeuers = kC, .basket_capacity = 44});
  std::vector<std::vector<Value>> got;
  run_mpmc_sim(q, m, kP, kC, 40, false, &got);
  verify_mpmc_sim(got, kP, 40);
}

TEST(SimFaaQueueT, Mpmc) {
  constexpr int kP = 4, kC = 3;
  Machine m(machine_for(kP + kC));
  SimFaaQueue q(m, {});
  std::vector<std::vector<Value>> got;
  run_mpmc_sim(q, m, kP, kC, 80, true, &got);
  verify_mpmc_sim(got, kP, 80);
}

TEST(SimMsQueueT, Mpmc) {
  constexpr int kP = 4, kC = 3;
  Machine m(machine_for(kP + kC));
  SimMsQueue q(m, {});
  std::vector<std::vector<Value>> got;
  run_mpmc_sim(q, m, kP, kC, 60, true, &got);
  verify_mpmc_sim(got, kP, 60);
}

TEST(SimBasketsQueueT, Mpmc) {
  constexpr int kP = 4, kC = 3;
  Machine m(machine_for(kP + kC));
  SimBasketsQueue q(m, {});
  q.set_dequeuers(kP + kC);
  std::vector<std::vector<Value>> got;
  run_mpmc_sim(q, m, kP, kC, 60, true, &got);
  verify_mpmc_sim(got, kP, 60);
}

TEST(SimCcQueueT, Mpmc) {
  constexpr int kP = 4, kC = 3;
  Machine m(machine_for(kP + kC));
  SimCcQueue q(m, {.threads = kP + kC});
  std::vector<std::vector<Value>> got;
  run_mpmc_sim(q, m, kP, kC, 60, true, &got);
  verify_mpmc_sim(got, kP, 60);
}

// ---- SBQ-specific: baskets actually form under contention ----

TEST(SimSbqQueue, BasketsFormUnderContention) {
  constexpr int kP = 6;
  Machine m(machine_for(kP + 1));
  SimSbq q(m, {.enqueuers = kP, .dequeuers = 1});
  constexpr Value kPer = 40;
  for (int p = 0; p < kP; ++p) {
    m.spawn([](Machine& m, SimSbq& q, int p) -> Task<void> {
      for (Value i = 0; i < kPer; ++i) {
        co_await q.enqueue(m.core(p), make_elem(p, i), p);
      }
    }(m, q, p));
  }
  m.run();
  // Count nodes: with baskets forming, far fewer nodes than elements.
  Value nodes = 0;
  m.spawn([](Machine& m, SimSbq& q, Value* nodes) -> Task<void> {
    Addr n = co_await m.core(kP).load(q.head_addr());
    while (n != 0) {
      ++*nodes;
      n = co_await q.load_next(m.core(kP), n);
    }
  }(m, q, &nodes));
  m.run();
  EXPECT_LT(nodes, static_cast<Value>(kP) * kPer)
      << "no baskets formed: every element got its own node";
  // Drain: every element must come out exactly once.
  std::vector<std::vector<Value>> got(1);
  m.spawn([](Machine& m, SimSbq& q, std::vector<Value>* out) -> Task<void> {
    for (;;) {
      const Value e = co_await q.dequeue(m.core(kP), 0);
      if (e == 0) co_return;
      out->push_back(e);
    }
  }(m, q, &got[0]));
  m.run();
  verify_mpmc_sim(got, kP, kPer);
}

TEST(SimSbqQueue, PrefillThenDrain) {
  Machine m(machine_for(2));
  SimSbq q(m, {.enqueuers = 1, .dequeuers = 1});
  m.spawn([](Machine& m, SimSbq& q) -> Task<void> {
    co_await q.prefill(m.core(0), kFirstElement, 100);
    for (Value i = 0; i < 100; ++i) {
      EXPECT_EQ(co_await q.dequeue(m.core(1), 0), kFirstElement + i);
    }
    EXPECT_EQ(co_await q.dequeue(m.core(1), 0), 0u);
  }(m, q));
  m.run();
}

}  // namespace
}  // namespace sbq::simq
