// Cross-queue integration/stress tests: the same randomized mixed workload
// and invariant checks run over every queue implementation in the library,
// parameterized by thread mix. These are the "one harness, five queues"
// tests mirroring the paper's benchmark setup (§6.1).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <tuple>
#include <vector>

#include "basket/sbq_basket.hpp"
#include "basket/treiber_basket.hpp"
#include "common/rng.hpp"
#include "htm/cas_policy.hpp"
#include "queues/baskets_queue.hpp"
#include "queues/cc_queue.hpp"
#include "queues/faa_queue.hpp"
#include "queues/ms_queue.hpp"
#include "queues/sbq.hpp"
#include "queue_test_util.hpp"

namespace sbq {
namespace {

using testutil::Element;

// A uniform adapter giving every queue the SBQ id convention (separate
// enqueuer/dequeuer id ranges).
template <typename Q, bool kSingleIdSpace>
struct Adapter {
  template <typename... Args>
  explicit Adapter(int producers, int consumers, Args&&... args)
      : producers_(producers),
        queue_(make(producers, consumers, std::forward<Args>(args)...)) {}

  static std::unique_ptr<Q> make(int producers, int consumers) {
    if constexpr (requires { typename Q::Config; }) {
      typename Q::Config cfg{};
      cfg.max_enqueuers = static_cast<std::size_t>(producers);
      cfg.max_dequeuers = static_cast<std::size_t>(consumers);
      return std::make_unique<Q>(cfg);
    } else {
      return std::make_unique<Q>(static_cast<std::size_t>(producers + consumers));
    }
  }

  void enqueue(Element* e, int producer_id) { queue_->enqueue(e, producer_id); }
  Element* dequeue(int consumer_id) {
    return queue_->dequeue(kSingleIdSpace ? producers_ + consumer_id
                                          : consumer_id);
  }

  int producers_;
  std::unique_ptr<Q> queue_;
};

// The five queue families under one test interface.
enum class Kind { kSbqHtm, kSbqCas, kBqModular, kBqOriginal, kMs, kFaa, kCc };

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kSbqHtm: return "SBQ-HTM";
    case Kind::kSbqCas: return "SBQ-CAS";
    case Kind::kBqModular: return "BQ-modular";
    case Kind::kBqOriginal: return "BQ-original";
    case Kind::kMs: return "MS";
    case Kind::kFaa: return "FAA";
    case Kind::kCc: return "CC";
  }
  return "?";
}

struct MixParam {
  Kind kind;
  int producers;
  int consumers;
};

void PrintTo(const MixParam& p, std::ostream* os) {
  *os << kind_name(p.kind) << "_p" << p.producers << "_c" << p.consumers;
}

class QueueMixTest : public ::testing::TestWithParam<MixParam> {};

template <typename AdapterT>
void run_and_verify(int producers, int consumers, std::uint64_t per_producer) {
  AdapterT adapter(producers, consumers);
  std::vector<Element> storage;
  auto result = testutil::run_mpmc(adapter, producers, consumers, per_producer,
                                   storage, /*single_id_space=*/false);
  testutil::verify_mpmc(result, producers, per_producer);
}

TEST_P(QueueMixTest, NoLossNoDupPerProducerFifo) {
  const auto& p = GetParam();
  constexpr std::uint64_t kPerProducer = 2000;
  using SbqHtmQ = Queue<Element, SbqBasket<Element>, HtmCas>;
  using SbqCasQ = Queue<Element, SbqBasket<Element>, DelayedCas>;
  using BqModQ = Queue<Element, TreiberBasket<Element>, NativeCas>;
  switch (p.kind) {
    case Kind::kSbqHtm:
      run_and_verify<Adapter<SbqHtmQ, false>>(p.producers, p.consumers, kPerProducer);
      break;
    case Kind::kSbqCas:
      run_and_verify<Adapter<SbqCasQ, false>>(p.producers, p.consumers, kPerProducer);
      break;
    case Kind::kBqModular:
      run_and_verify<Adapter<BqModQ, false>>(p.producers, p.consumers, kPerProducer);
      break;
    case Kind::kBqOriginal:
      run_and_verify<Adapter<BasketsQueue<Element>, true>>(p.producers, p.consumers,
                                                           kPerProducer);
      break;
    case Kind::kMs:
      run_and_verify<Adapter<MsQueue<Element>, true>>(p.producers, p.consumers,
                                                      kPerProducer);
      break;
    case Kind::kFaa:
      run_and_verify<Adapter<FaaQueue<Element, 64>, true>>(p.producers, p.consumers,
                                                           kPerProducer);
      break;
    case Kind::kCc:
      run_and_verify<Adapter<CcQueue<Element>, true>>(p.producers, p.consumers,
                                                      kPerProducer);
      break;
  }
}

std::vector<MixParam> all_mixes() {
  std::vector<MixParam> out;
  for (Kind k : {Kind::kSbqHtm, Kind::kSbqCas, Kind::kBqModular,
                 Kind::kBqOriginal, Kind::kMs, Kind::kFaa, Kind::kCc}) {
    out.push_back({k, 1, 1});
    out.push_back({k, 4, 1});
    out.push_back({k, 1, 4});
    out.push_back({k, 3, 3});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllQueues, QueueMixTest,
                         ::testing::ValuesIn(all_mixes()),
                         [](const ::testing::TestParamInfo<MixParam>& info) {
                           std::string name = kind_name(info.param.kind);
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name + "_p" +
                                  std::to_string(info.param.producers) + "_c" +
                                  std::to_string(info.param.consumers);
                         });

}  // namespace
}  // namespace sbq
