// Protocol litmus tests for the MSI directory simulator: state transitions,
// value propagation through owner hand-offs, invalidation/ack collection,
// atomicity of RMWs, and the stall behaviour contended RMW chains rely on.
#include <gtest/gtest.h>

#include <vector>

#include "sim/machine.hpp"

namespace sbq::sim {
namespace {

using DirState = Directory::LineState;
using CoreState = Core::LineState;

MachineConfig small_machine(int cores) {
  MachineConfig cfg;
  cfg.cores = cores;
  return cfg;
}

TEST(SimProtocol, LoadMissFetchesFromLlc) {
  Machine m(small_machine(2));
  const Addr x = m.alloc();
  m.directory().poke(x, 1234);
  Value got = 0;
  m.spawn([](Machine& m, Addr x, Value* got) -> Task<void> {
    *got = co_await m.core(0).load(x);
  }(m, x, &got));
  m.run();
  EXPECT_EQ(got, 1234u);
  EXPECT_EQ(m.core(0).line_state(x), CoreState::kShared);
  EXPECT_EQ(m.directory().line_state(x), DirState::kShared);
  EXPECT_EQ(m.directory().sharer_count(x), 1u);
}

TEST(SimProtocol, LoadHitCostsOneCycleNoTraffic) {
  Machine m(small_machine(1));
  const Addr x = m.alloc();
  m.directory().poke(x, 5);
  Time first_done = 0, second_done = 0;
  m.spawn([](Machine& m, Addr x, Time* t1, Time* t2) -> Task<void> {
    co_await m.core(0).load(x);
    *t1 = m.engine().now();
    co_await m.core(0).load(x);
    *t2 = m.engine().now();
  }(m, x, &first_done, &second_done));
  const auto msgs_before = m.interconnect().messages_sent();
  m.run();
  EXPECT_EQ(second_done - first_done, m.config().hit_latency);
  // The second load generated no messages: only GetS + Data from the first.
  EXPECT_EQ(m.interconnect().messages_sent() - msgs_before, 2u);
}

TEST(SimProtocol, StoreMissTakesOwnership) {
  Machine m(small_machine(2));
  const Addr x = m.alloc();
  m.spawn([](Machine& m, Addr x) -> Task<void> {
    co_await m.core(1).store(x, 77);
  }(m, x));
  m.run();
  EXPECT_EQ(m.core(1).line_state(x), CoreState::kModified);
  EXPECT_EQ(m.directory().line_state(x), DirState::kModified);
  EXPECT_EQ(m.directory().line_owner(x), 1);
}

TEST(SimProtocol, WriteInvalidatesReaders) {
  Machine m(small_machine(3));
  const Addr x = m.alloc();
  m.directory().poke(x, 1);
  // Cores 0 and 1 read, then core 2 writes; finally core 0 re-reads and
  // must see the new value (fetched via Fwd-GetS from core 2).
  Value reread = 0;
  m.spawn([](Machine& m, Addr x, Value* out) -> Task<void> {
    co_await m.core(0).load(x);
    co_await m.core(1).load(x);
    co_await m.core(2).store(x, 99);
    EXPECT_EQ(m.core(0).line_state(x), Core::LineState::kInvalid);
    EXPECT_EQ(m.core(1).line_state(x), Core::LineState::kInvalid);
    *out = co_await m.core(0).load(x);
  }(m, x, &reread));
  m.run();
  EXPECT_EQ(reread, 99u);
  // The Fwd-GetS was served by the writer, which stays in Owned state while
  // its write-back travels; once the WB lands the directory is Shared.
  EXPECT_EQ(m.directory().line_state(x), DirState::kShared);
  EXPECT_EQ(m.core(2).line_state(x), CoreState::kOwned);
  EXPECT_EQ(m.core(0).line_state(x), CoreState::kShared);
}

TEST(SimProtocol, OwnerHandoffCarriesValue) {
  Machine m(small_machine(3));
  const Addr x = m.alloc();
  // Three writers in sequence; each must observe the previous value via
  // the Fwd-GetM owner hand-off (dir never sees the intermediate values).
  m.spawn([](Machine& m, Addr x) -> Task<void> {
    co_await m.core(0).store(x, 10);
    const Value v1 = co_await m.core(1).faa(x, 5);
    EXPECT_EQ(v1, 10u);
    const Value v2 = co_await m.core(2).faa(x, 1);
    EXPECT_EQ(v2, 15u);
    const Value final = co_await m.core(0).load(x);
    EXPECT_EQ(final, 16u);
  }(m, x));
  m.run();
}

TEST(SimProtocol, CasSemantics) {
  Machine m(small_machine(2));
  const Addr x = m.alloc();
  m.directory().poke(x, 7);
  m.spawn([](Machine& m, Addr x) -> Task<void> {
    EXPECT_EQ(co_await m.core(0).cas(x, 7, 8), 1u);
    EXPECT_EQ(co_await m.core(0).cas(x, 7, 9), 0u);
    EXPECT_EQ(co_await m.core(1).load(x), 8u);
    EXPECT_EQ(co_await m.core(1).swap(x, 100), 8u);
    EXPECT_EQ(co_await m.core(0).load(x), 100u);
  }(m, x));
  m.run();
}

TEST(SimProtocol, ConcurrentFaasAllApply) {
  constexpr int kCores = 8;
  constexpr int kOpsPerCore = 25;
  Machine m(small_machine(kCores));
  const Addr x = m.alloc();
  for (int c = 0; c < kCores; ++c) {
    m.spawn([](Machine& m, int c, Addr x) -> Task<void> {
      for (int i = 0; i < kOpsPerCore; ++i) {
        co_await m.core(c).faa(x, 1);
      }
    }(m, c, x));
  }
  m.run();
  Value final = 0;
  m.spawn([](Machine& m, Addr x, Value* out) -> Task<void> {
    *out = co_await m.core(0).load(x);
  }(m, x, &final));
  m.run();
  EXPECT_EQ(final, static_cast<Value>(kCores * kOpsPerCore));
}

TEST(SimProtocol, ConcurrentCasExactlyOneWinnerPerRound) {
  constexpr int kCores = 6;
  constexpr int kRounds = 30;
  Machine m(small_machine(kCores));
  const Addr x = m.alloc();
  const Addr wins_base = m.alloc(kCores);
  auto barrier = std::make_shared<SimBarrier>(m.engine(), kCores);
  for (int c = 0; c < kCores; ++c) {
    m.spawn([](Machine& m, int c, Addr x, Addr wins,
               std::shared_ptr<SimBarrier> b) -> Task<void> {
      Value my_wins = 0;
      for (Value round = 0; round < kRounds; ++round) {
        co_await b->arrive_and_wait();
        if (co_await m.core(c).cas(x, round, round + 1) != 0) ++my_wins;
        co_await b->arrive_and_wait();
      }
      co_await m.core(c).store(wins + static_cast<Addr>(c), my_wins);
    }(m, c, x, wins_base, barrier));
  }
  m.run();
  Value total = 0;
  for (int c = 0; c < kCores; ++c) {
    total += m.directory().peek(wins_base + static_cast<Addr>(c));
  }
  // Directory peek only sees written-back values; read through a core.
  Value total2 = 0;
  m.spawn([](Machine& m, Addr wins, Value* out) -> Task<void> {
    Value sum = 0;
    for (int c = 0; c < kCores; ++c) {
      sum += co_await m.core(0).load(wins + static_cast<Addr>(c));
    }
    *out = sum;
  }(m, wins_base, &total2));
  m.run();
  EXPECT_EQ(total2, static_cast<Value>(kRounds));
  (void)total;
}

TEST(SimProtocol, ContendedFaaLatencyGrowsLinearly) {
  // The heart of §3.2: average contended-RMW latency is linear in the core
  // count. Measure mean FAA latency at 4 and at 16 cores; the ratio must be
  // roughly 4x (we accept 2.5x..6x).
  auto mean_faa_latency = [](int cores) {
    Machine m(small_machine(cores));
    const Addr x = m.alloc();
    auto total_lat = std::make_shared<double>(0.0);
    auto ops = std::make_shared<std::uint64_t>(0);
    constexpr int kOps = 60;
    for (int c = 0; c < cores; ++c) {
      m.spawn([](Machine& m, int c, Addr x, std::shared_ptr<double> lat,
                 std::shared_ptr<std::uint64_t> n) -> Task<void> {
        for (int i = 0; i < kOps; ++i) {
          const Time start = m.engine().now();
          co_await m.core(c).faa(x, 1);
          *lat += static_cast<double>(m.engine().now() - start);
          ++*n;
        }
      }(m, c, x, total_lat, ops));
    }
    m.run();
    return *total_lat / static_cast<double>(*ops);
  };
  const double l4 = mean_faa_latency(4);
  const double l16 = mean_faa_latency(16);
  EXPECT_GT(l16 / l4, 2.5) << "l4=" << l4 << " l16=" << l16;
  EXPECT_LT(l16 / l4, 6.0) << "l4=" << l4 << " l16=" << l16;
}

TEST(SimProtocol, NumaLatencyHigherAcrossSockets) {
  MachineConfig cfg;
  cfg.cores = 4;
  cfg.sockets = 2;  // cores 0,1 on socket 0; cores 2,3 on socket 1
  Machine m(cfg);
  EXPECT_EQ(m.interconnect().socket_of(0), 0);
  EXPECT_EQ(m.interconnect().socket_of(1), 0);
  EXPECT_EQ(m.interconnect().socket_of(2), 1);
  EXPECT_EQ(m.interconnect().socket_of(3), 1);
  EXPECT_EQ(m.interconnect().latency(0, 1), cfg.intra_latency);
  EXPECT_EQ(m.interconnect().latency(0, 2), cfg.inter_latency);
  // Remote loads take longer than local ones.
  const Addr x = m.alloc();
  Time local_done = 0, remote_done = 0;
  m.spawn([](Machine& m, Addr x, Time* local, Time* remote) -> Task<void> {
    const Time t0 = m.engine().now();
    co_await m.core(0).load(x);  // directory homed on socket 0
    *local = m.engine().now() - t0;
    const Time t1 = m.engine().now();
    co_await m.core(2).load(x + 1000);
    *remote = m.engine().now() - t1;
  }(m, x, &local_done, &remote_done));
  m.run();
  EXPECT_GT(remote_done, local_done);
}

TEST(SimProtocol, MachineRunDetectsCompletion) {
  Machine m(small_machine(1));
  m.spawn([](Machine& m) -> Task<void> {
    co_await m.core(0).think(100);
  }(m));
  EXPECT_EQ(m.spawned(), 1u);
  m.run();
  EXPECT_EQ(m.finished(), 1u);
  EXPECT_GE(m.engine().now(), 100u);
}

}  // namespace
}  // namespace sbq::sim
