// Robustness under fault injection (docs/robustness.md).
//
// The linearizability argument of §5.3.2 assumes nothing about *why* a
// transactional attempt aborts — so it must survive aborts the protocol
// itself never produces. This suite sweeps ≥16 fault seeds per queue with
// rate-based capacity/interrupt/spurious injection, bounded message-latency
// jitter, and the runtime coherence invariant checker enabled, and asserts
// on every seed:
//   * the recorded history passes the Henzinger–Sezgin–Vafeiadis checker,
//   * counts conserve (every enqueued element is dequeued exactly once),
//   * no coherence invariant trips (check_invariants would throw).
// Plus: the degraded plain-CAS path actually fires across the SBQ sweep,
// identical seeds replay byte-identically, Machine::snapshot refuses while
// fault one-shots are pending, and the quiescence watchdog throws on a
// deadlocked simulated program instead of hanging.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "verify/history_checker.hpp"
#include "simqueue/sim_faa_queue.hpp"
#include "simqueue/sim_ms_queue.hpp"
#include "simqueue/sim_sbq.hpp"

namespace sbq::simq {
namespace {

using histcheck::History;

constexpr std::uint64_t kSeeds = 16;
constexpr int kProducers = 2;
constexpr int kConsumers = 2;
constexpr Value kPerProducer = 12;

// Aggressive but not saturating: ~40% of transactional attempts take an
// injected non-conflict abort, half of all messages draw 1..12 cycles of
// extra latency, and the invariant checker audits the directory and every
// cache after each delivered message.
sim::MachineConfig faulty_machine(std::uint64_t fault_seed) {
  sim::MachineConfig cfg;
  cfg.cores = kProducers + kConsumers;
  cfg.check_invariants = true;
  cfg.fault_plan.enabled = true;
  cfg.fault_plan.seed = fault_seed;
  cfg.fault_plan.capacity_rate = 0.10;
  cfg.fault_plan.interrupt_rate = 0.20;
  cfg.fault_plan.spurious_rate = 0.10;
  cfg.fault_plan.message_jitter_rate = 0.5;
  cfg.fault_plan.max_message_jitter = 12;
  return cfg;
}

struct RunOutcome {
  History history;
  std::vector<Value> enqueued;
  std::vector<Value> dequeued;
  sim::MetricsSnapshot metrics;
};

// run_recorded (sim_linearizability_test.cpp) plus value recording so
// conservation can be checked as a multiset equality.
template <typename QueueT>
RunOutcome run_recorded(Machine& m, QueueT& q, bool single_id_space) {
  auto out = std::make_shared<RunOutcome>();
  auto hist = std::make_shared<History>();
  auto remaining =
      std::make_shared<Value>(Value(kProducers) * kPerProducer);
  for (int p = 0; p < kProducers; ++p) {
    m.spawn([](Machine& m, QueueT& q, int p,
               std::shared_ptr<RunOutcome> out,
               std::shared_ptr<History> hist) -> Task<void> {
      Core& c = m.core(p);
      co_await c.think(Time(1 + p * 13));
      for (Value i = 0; i < kPerProducer; ++i) {
        const Value elem = kFirstElement + (Value(p) << 32) + i;
        const Time inv = m.engine().now();
        co_await q.enqueue(c, elem, p);
        hist->record_enq(inv, m.engine().now(), elem);
        out->enqueued.push_back(elem);
        co_await c.think(i % 7 == 0 ? 900 : 30);
      }
    }(m, q, p, out, hist));
  }
  for (int ci = 0; ci < kConsumers; ++ci) {
    const int core = kProducers + ci;
    const int id = single_id_space ? kProducers + ci : ci;
    m.spawn([](Machine& m, QueueT& q, int core, int id,
               std::shared_ptr<Value> remaining,
               std::shared_ptr<RunOutcome> out,
               std::shared_ptr<History> hist) -> Task<void> {
      Core& c = m.core(core);
      co_await c.think(Time(2 + id * 11));
      while (*remaining > 0) {
        const Time inv = m.engine().now();
        const Value e = co_await q.dequeue(c, id);
        hist->record_deq(inv, m.engine().now(), e);
        if (e != 0) {
          out->dequeued.push_back(e);
          --*remaining;
        } else {
          co_await c.think(120);
        }
      }
    }(m, q, core, id, remaining, out, hist));
  }
  m.run();
  out->history = *hist;
  out->metrics = m.metrics();
  return *out;
}

void expect_no_violations(const History& h) {
  const auto violations = h.check();
  for (const auto& v : violations) {
    ADD_FAILURE() << v.kind << ": " << v.detail;
  }
  EXPECT_GT(h.size(), 0u);
}

void expect_conserved(RunOutcome& o) {
  ASSERT_EQ(o.enqueued.size(),
            static_cast<std::size_t>(Value(kProducers) * kPerProducer));
  std::sort(o.enqueued.begin(), o.enqueued.end());
  std::sort(o.dequeued.begin(), o.dequeued.end());
  EXPECT_EQ(o.enqueued, o.dequeued);
}

RunOutcome run_sbq(std::uint64_t fault_seed) {
  Machine m(faulty_machine(fault_seed));
  SimSbq::Config qc;
  qc.enqueuers = kProducers;
  qc.dequeuers = kConsumers;
  // Small degradation budget so the sweep reliably exercises the
  // fallback-CAS path at these injection rates (0.4^3 per attempt chain).
  qc.txcas.max_nonconflict_aborts = 3;
  SimSbq q(m, qc);
  return run_recorded(m, q, /*single_id_space=*/false);
}

// The MS/FAA queues never run transactions, so rate-based abort injection
// is inert for them — their sweep exercises message jitter (a perturbed
// but protocol-legal schedule) under the invariant checker.
RunOutcome run_ms(std::uint64_t fault_seed) {
  Machine m(faulty_machine(fault_seed));
  SimMsQueue q(m, {});
  return run_recorded(m, q, /*single_id_space=*/true);
}

RunOutcome run_faa(std::uint64_t fault_seed) {
  Machine m(faulty_machine(fault_seed));
  SimFaaQueue q(m, {});
  return run_recorded(m, q, /*single_id_space=*/true);
}

TEST(SimFault, SeedSweepSbqHtm) {
  std::uint64_t total_injected = 0;
  std::uint64_t total_fallback_cas = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    RunOutcome o = run_sbq(seed);
    expect_no_violations(o.history);
    expect_conserved(o);
    EXPECT_TRUE(o.metrics.fault_injection);
    total_injected += o.metrics.faults.injected_total();
    total_fallback_cas += o.metrics.htm.fallback_cas;
  }
  // The sweep must actually inject aborts and actually degrade some TxCAS
  // calls to plain CAS — otherwise it is not testing the fallback path.
  EXPECT_GT(total_injected, 0u);
  EXPECT_GT(total_fallback_cas, 0u);
}

TEST(SimFault, SeedSweepMsQueue) {
  std::uint64_t total_jittered = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    RunOutcome o = run_ms(seed);
    expect_no_violations(o.history);
    expect_conserved(o);
    total_jittered += o.metrics.faults.jittered_messages;
  }
  EXPECT_GT(total_jittered, 0u);
}

TEST(SimFault, SeedSweepFaaQueue) {
  std::uint64_t total_jittered = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    RunOutcome o = run_faa(seed);
    expect_no_violations(o.history);
    expect_conserved(o);
    total_jittered += o.metrics.faults.jittered_messages;
  }
  EXPECT_GT(total_jittered, 0u);
}

// Identical fault seeds must replay byte-identically: the injection and
// jitter streams are deterministic functions of (seed, core id), not of
// host state.
TEST(SimFault, SameSeedIsDeterministic) {
  RunOutcome a = run_sbq(5);
  RunOutcome b = run_sbq(5);
  EXPECT_EQ(a.metrics.final_time, b.metrics.final_time);
  EXPECT_EQ(a.metrics.messages, b.metrics.messages);
  EXPECT_EQ(a.metrics.events, b.metrics.events);
  EXPECT_EQ(a.metrics.htm.calls, b.metrics.htm.calls);
  EXPECT_EQ(a.metrics.htm.attempts, b.metrics.htm.attempts);
  EXPECT_EQ(a.metrics.htm.fallback_cas, b.metrics.htm.fallback_cas);
  EXPECT_EQ(a.metrics.faults.injected_capacity,
            b.metrics.faults.injected_capacity);
  EXPECT_EQ(a.metrics.faults.injected_interrupt,
            b.metrics.faults.injected_interrupt);
  EXPECT_EQ(a.metrics.faults.injected_spurious,
            b.metrics.faults.injected_spurious);
  EXPECT_EQ(a.metrics.faults.jittered_messages,
            b.metrics.faults.jittered_messages);
  EXPECT_EQ(a.metrics.faults.jitter_cycles, b.metrics.faults.jitter_cycles);
  EXPECT_EQ(a.enqueued, b.enqueued);
  EXPECT_EQ(a.dequeued, b.dequeued);
  EXPECT_EQ(a.history.size(), b.history.size());
  // And distinct seeds must actually perturb the schedule.
  RunOutcome c = run_sbq(6);
  EXPECT_NE(a.metrics.final_time, c.metrics.final_time);
}

// snapshot() must refuse (not silently drop) while scheduled fault
// one-shots have not fired yet: a fork taken then would silently lose them.
TEST(SimFault, SnapshotRefusedWhileOneShotsPending) {
  sim::MachineConfig cfg;
  cfg.cores = 2;
  cfg.fault_plan.enabled = true;
  cfg.fault_plan.one_shots.push_back(
      {.time = 400, .core = 0, .kind = sim::FaultKind::kCapacity});
  Machine m(cfg);
  EXPECT_THROW((void)m.snapshot(), std::runtime_error);

  // Once run() has drained the plan the machine is snapshottable again,
  // and the one-shot is recorded as fired (a no-op abort if the target
  // core held no transaction at that instant — like a real interrupt).
  m.spawn([](Machine& m) -> Task<void> {
    co_await m.core(0).think(10);
  }(m));
  m.run();
  EXPECT_EQ(m.metrics().faults.one_shots_fired, 1u);
  EXPECT_NO_THROW((void)m.snapshot());
}

// The quiescence watchdog: a simulated program that deadlocks (here: one
// party stuck at a two-party barrier) must throw — after dumping the debug
// ring — instead of returning as if the run completed.
TEST(SimFault, WatchdogThrowsOnDeadlock) {
  sim::MachineConfig cfg;
  cfg.cores = 2;
  Machine m(cfg);
  sim::SimBarrier barrier(m.engine(), /*parties=*/2);
  m.spawn([](Machine& m, sim::SimBarrier& b) -> Task<void> {
    co_await m.core(0).think(5);
    co_await b.arrive_and_wait();  // partner never arrives
  }(m, barrier));
  EXPECT_THROW(m.run(), std::runtime_error);
}

// The always-on debug ring records interconnect traffic without any trace
// flag, so post-mortem dumps work in default-configured runs.
TEST(SimFault, DebugRingRecordsWithoutTraceFlag) {
  sim::MachineConfig cfg;
  cfg.cores = 2;
  ASSERT_FALSE(cfg.record_trace);
  Machine m(cfg);
  const sim::Addr a = m.alloc();
  m.spawn([](Machine& m, sim::Addr a) -> Task<void> {
    co_await m.core(0).store(a, 7);
    co_await m.core(1).load(a);
  }(m, a));
  m.run();
  EXPECT_GT(m.debug_ring().recorded(), 0u);
}

}  // namespace
}  // namespace sbq::simq
