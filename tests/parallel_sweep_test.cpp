// Determinism regression tests for the parallel sweep runner: a sweep run
// on the --jobs pool must produce results bit-identical to a serial run,
// cell by cell, and the pool must deliver rows in order.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "benchsupport/parallel_sweep.hpp"
#include "sim_queue_bench_util.hpp"

namespace sbq::bench {
namespace {

// A fig5-style producer-only grid: every evaluated queue at a few thread
// counts, two repeats, collected via run_queue_sweep.
QueueSweepResults run_small_fig5_sweep(int jobs, std::uint64_t seed) {
  const std::vector<int> threads{1, 2, 4};
  const std::vector<QueueKind>& queues = evaluated_queue_kinds();
  const int repeats = 2;
  QueueSweepResults out;
  run_queue_sweep(
      threads, queues, repeats, jobs,
      [&](int t, int repeat) {
        sim::MachineConfig mcfg;
        mcfg.cores = t;
        WorkloadSpec spec;
        spec.kind = Workload::kProducerOnly;
        spec.producers = t;
        spec.ops_per_thread = 30;
        spec.seed = seed + static_cast<std::uint64_t>(repeat) * 7919;
        return std::pair(mcfg, spec);
      },
      [&](std::size_t row, const QueueSweepResults& res) {
        if (row + 1 == threads.size()) out = res;  // snapshot once complete
      });
  return out;
}

void expect_identical(const QueueSweepResults& a, const QueueSweepResults& b) {
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    EXPECT_EQ(a.cells[i].enq_ops, b.cells[i].enq_ops);
    EXPECT_EQ(a.cells[i].deq_ops, b.cells[i].deq_ops);
    // The simulation is deterministic, so even the derived doubles must be
    // bit-identical — no tolerance.
    EXPECT_EQ(a.cells[i].enq_latency_cycles, b.cells[i].enq_latency_cycles);
    EXPECT_EQ(a.cells[i].deq_latency_cycles, b.cells[i].deq_latency_cycles);
    EXPECT_EQ(a.cells[i].duration_cycles, b.cells[i].duration_cycles);
  }
}

TEST(ParallelSweep, ParallelMatchesSerialCellByCell) {
  const QueueSweepResults serial = run_small_fig5_sweep(/*jobs=*/1, 42);
  const QueueSweepResults parallel = run_small_fig5_sweep(/*jobs=*/4, 42);
  ASSERT_FALSE(serial.cells.empty());
  expect_identical(serial, parallel);
}

TEST(ParallelSweep, SameSeedTwiceIsIdentical) {
  const QueueSweepResults first = run_small_fig5_sweep(/*jobs=*/4, 7);
  const QueueSweepResults second = run_small_fig5_sweep(/*jobs=*/4, 7);
  expect_identical(first, second);
}

TEST(ParallelSweep, DifferentSeedDiffers) {
  const QueueSweepResults a = run_small_fig5_sweep(/*jobs=*/2, 1);
  const QueueSweepResults b = run_small_fig5_sweep(/*jobs=*/2, 99);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  bool any_diff = false;
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    any_diff |= a.cells[i].duration_cycles != b.cells[i].duration_cycles;
  }
  EXPECT_TRUE(any_diff) << "seed must influence the simulated timings";
}

TEST(ParallelSweep, RowsDeliveredInOrderWhileCellsRunOutOfOrder) {
  constexpr std::size_t kRows = 8;
  constexpr std::size_t kCols = 3;
  std::vector<int> order;
  std::atomic<int> cells_run{0};
  run_sweep_cells(
      kRows, kCols, /*jobs=*/4,
      [&](std::size_t) { cells_run.fetch_add(1); },
      [&](std::size_t row) { order.push_back(static_cast<int>(row)); });
  EXPECT_EQ(cells_run.load(), static_cast<int>(kRows * kCols));
  ASSERT_EQ(order.size(), kRows);
  for (std::size_t r = 0; r < kRows; ++r) {
    EXPECT_EQ(order[r], static_cast<int>(r));
  }
}

TEST(ParallelSweep, CellExceptionPropagates) {
  EXPECT_THROW(
      run_sweep_cells(4, 2, /*jobs=*/3,
                      [&](std::size_t i) {
                        if (i == 5) throw std::runtime_error("boom");
                      }),
      std::runtime_error);
}

TEST(ParallelSweep, SerialModeRunsInline) {
  std::vector<std::size_t> seen;
  run_sweep_cells(2, 2, /*jobs=*/1,
                  [&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(QueueFactory, NamesRoundTrip) {
  for (QueueKind kind : evaluated_queue_kinds()) {
    EXPECT_EQ(queue_kind_from_name(queue_kind_name(kind)), kind);
  }
  EXPECT_THROW(queue_kind_from_name("No-Such-Queue"), std::invalid_argument);
  EXPECT_EQ(queue_names().size(), evaluated_queue_kinds().size());
}

}  // namespace
}  // namespace sbq::bench
