// Tests for the Michael–Scott queue baseline.
#include <gtest/gtest.h>

#include "queues/ms_queue.hpp"
#include "queues/queue_traits.hpp"
#include "queue_test_util.hpp"

namespace sbq {
namespace {

static_assert(ConcurrentQueue<MsQueue<int>, int>);

TEST(MsQueue, EmptyDequeueReturnsNull) {
  MsQueue<int> q(2);
  EXPECT_EQ(q.dequeue(0), nullptr);
}

TEST(MsQueue, FifoSingleThread) {
  MsQueue<int> q(1);
  int a = 1, b = 2, c = 3;
  q.enqueue(&a, 0);
  q.enqueue(&b, 0);
  q.enqueue(&c, 0);
  EXPECT_EQ(q.dequeue(0), &a);
  EXPECT_EQ(q.dequeue(0), &b);
  EXPECT_EQ(q.dequeue(0), &c);
  EXPECT_EQ(q.dequeue(0), nullptr);
}

TEST(MsQueue, InterleavedEnqueueDequeue) {
  MsQueue<int> q(1);
  int vals[100];
  for (int i = 0; i < 100; ++i) {
    q.enqueue(&vals[i], 0);
    if (i % 3 == 2) {
      // Drain two, keeping the queue non-trivial.
      EXPECT_NE(q.dequeue(0), nullptr);
      EXPECT_NE(q.dequeue(0), nullptr);
    }
  }
  int drained = 0;
  while (q.dequeue(0) != nullptr) ++drained;
  EXPECT_EQ(drained + 66, 100);
}

TEST(MsQueue, EmptyAfterDrainThenReusable) {
  MsQueue<int> q(1);
  int a = 1;
  q.enqueue(&a, 0);
  EXPECT_EQ(q.dequeue(0), &a);
  EXPECT_EQ(q.dequeue(0), nullptr);
  q.enqueue(&a, 0);
  EXPECT_EQ(q.dequeue(0), &a);
}

TEST(MsQueue, MpmcNoLossNoDupFifo) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr std::uint64_t kPerProducer = 5000;
  MsQueue<testutil::Element> q(kProducers + kConsumers);
  std::vector<testutil::Element> storage;
  auto result = testutil::run_mpmc(q, kProducers, kConsumers, kPerProducer,
                                   storage, /*single_id_space=*/true);
  testutil::verify_mpmc(result, kProducers, kPerProducer);
}

TEST(MsQueue, SpscLongRun) {
  MsQueue<testutil::Element> q(2);
  std::vector<testutil::Element> storage;
  auto result = testutil::run_mpmc(q, 1, 1, 40000, storage, true);
  testutil::verify_mpmc(result, 1, 40000);
  // Single consumer: global FIFO must hold exactly.
  const auto& seq = result.per_consumer[0];
  for (std::size_t i = 0; i < seq.size(); ++i) EXPECT_EQ(seq[i]->seq, i);
}

}  // namespace
}  // namespace sbq
