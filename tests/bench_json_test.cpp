// Json value/writer/parser unit coverage plus BenchReport round-trips: a
// tiny sweep's artifact is written to disk, re-parsed, and checked against
// the sbq.bench/1 schema (docs/observability.md).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "benchsupport/bench_report.hpp"
#include "benchsupport/json.hpp"
#include "benchsupport/metrics_json.hpp"
#include "benchsupport/table.hpp"
#include "sim/stats.hpp"

namespace sbq {
namespace {

TEST(Json, ScalarsAndDump) {
  EXPECT_EQ(Json().dump(-1), "null");
  EXPECT_EQ(Json(true).dump(-1), "true");
  EXPECT_EQ(Json(false).dump(-1), "false");
  EXPECT_EQ(Json(42).dump(-1), "42");
  EXPECT_EQ(Json(std::uint64_t{1} << 40).dump(-1), "1099511627776");
  EXPECT_EQ(Json(2.5).dump(-1), "2.5");
  EXPECT_EQ(Json("hi").dump(-1), "\"hi\"");
  // Control characters and quotes are escaped.
  EXPECT_EQ(Json("a\"b\n").dump(-1), "\"a\\\"b\\n\"");
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  Json o = Json::object();
  o.set("z", Json(1));
  o.set("a", Json(2));
  o.set("z", Json(3));  // replaces in place, keeps position
  EXPECT_EQ(o.dump(-1), "{\"z\":3,\"a\":2}");
  EXPECT_TRUE(o.contains("a"));
  EXPECT_FALSE(o.contains("missing"));
  EXPECT_TRUE(o["missing"].is_null());
  EXPECT_EQ(o["z"].as_int(), 3);
}

TEST(Json, ParseRoundTrip) {
  const std::string doc =
      R"({"s":"x","n":-1.5,"i":7,"b":true,"nil":null,"a":[1,[2],{"k":3}]})";
  const Json j = Json::parse(doc);
  EXPECT_EQ(j["s"].as_string(), "x");
  EXPECT_DOUBLE_EQ(j["n"].as_double(), -1.5);
  EXPECT_EQ(j["i"].as_int(), 7);
  EXPECT_TRUE(j["b"].as_bool());
  EXPECT_TRUE(j["nil"].is_null());
  ASSERT_EQ(j["a"].size(), 3u);
  EXPECT_EQ(j["a"].at(1).at(0).as_int(), 2);
  EXPECT_EQ(j["a"].at(2)["k"].as_int(), 3);
  // dump -> parse -> dump is a fixed point.
  EXPECT_EQ(Json::parse(j.dump(-1)).dump(-1), j.dump(-1));
  EXPECT_EQ(Json::parse(j.dump(2)).dump(-1), j.dump(-1));
}

TEST(Json, ParseStringEscapes) {
  const Json j = Json::parse(R"("a\"b\\c\n\tA")");
  EXPECT_EQ(j.as_string(), "a\"b\\c\n\tA");
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), std::runtime_error);
  EXPECT_THROW(Json::parse("{"), std::runtime_error);
  EXPECT_THROW(Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(Json::parse("{\"a\":1,}"), std::runtime_error);
  EXPECT_THROW(Json::parse("tru"), std::runtime_error);
  EXPECT_THROW(Json::parse("1 2"), std::runtime_error);  // trailing garbage
  EXPECT_THROW(Json::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(Json::parse("nan"), std::runtime_error);
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(Json(inf).dump(-1), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(-1), "null");
}

TEST(TableToJson, ColumnsAndRows) {
  Table t({"a", "b"});
  t.add_row(std::vector<std::string>{"1", "x"});
  t.add_row(std::vector<std::string>{"2", "y"});
  const Json j = table_to_json(t);
  ASSERT_EQ(j["columns"].size(), 2u);
  EXPECT_EQ(j["columns"].at(0).as_string(), "a");
  ASSERT_EQ(j["rows"].size(), 2u);
  EXPECT_EQ(j["rows"].at(1).at(1).as_string(), "y");
}

TEST(MetricsJson, SnapshotSchema) {
  sim::MetricsSnapshot snap;
  snap.protocol.gets = 3;
  snap.htm.calls = 2;
  snap.htm.aborts[static_cast<int>(sim::AbortCause::kTrippedWriter)] = 1;
  snap.basket.closes = 0;
  snap.messages = 9;
  const Json j = metrics_to_json(snap);
  EXPECT_EQ(j["protocol"]["gets"].as_int(), 3);
  EXPECT_EQ(j["htm"]["calls"].as_int(), 2);
  EXPECT_EQ(j["htm"]["aborts"]["tripped_writer"].as_int(), 1);
  // No closes -> occupancy_min reported as 0, not UINT64_MAX.
  EXPECT_EQ(j["basket"]["occupancy_min"].as_int(), 0);
  EXPECT_EQ(j["messages"].as_int(), 9);
  ASSERT_EQ(j["htm"]["retry_histogram"].size(),
            static_cast<std::size_t>(sim::HtmCounters::kRetryBuckets));
}

TEST(MetricsJson, ParallelAndBackpressureBlocks) {
  // Default (serial, no caps) snapshots must NOT serialize the blocks —
  // that's what keeps the golden artifacts byte-identical.
  sim::MetricsSnapshot serial;
  const Json js = metrics_to_json(serial);
  EXPECT_FALSE(js.contains("parallel"));
  EXPECT_FALSE(js.contains("backpressure"));

  sim::MetricsSnapshot snap;
  snap.machine_threads = 4;
  snap.per_slice_events = {10, 20, 30, 40};
  snap.backpressure = true;
  snap.link_bp_stalls = 5;
  snap.link_queue_peak = 7;
  snap.dir_bp_stalls = 2;
  snap.dir_queue_peak = 3;
  const Json j = metrics_to_json(snap);
  EXPECT_EQ(j["parallel"]["machine_threads"].as_int(), 4);
  ASSERT_EQ(j["parallel"]["per_slice_events"].size(), 4u);
  EXPECT_EQ(j["parallel"]["per_slice_events"].at(2).as_int(), 30);
  EXPECT_EQ(j["backpressure"]["link_bp_stalls"].as_int(), 5);
  EXPECT_EQ(j["backpressure"]["link_queue_peak"].as_int(), 7);
  EXPECT_EQ(j["backpressure"]["dir_bp_stalls"].as_int(), 2);
  EXPECT_EQ(j["backpressure"]["dir_queue_peak"].as_int(), 3);
}

TEST(BenchReport, SweepConfigRecordsMachineThreads) {
  // machine_threads lands in the sweep config only when sharding is on —
  // default artifacts stay byte-identical.
  BenchOptions opts;
  {
    BenchReport report("serial_sweep");
    report.set_sweep_config(opts, {1}, 10, 1);
    EXPECT_FALSE(report.root()["config"].contains("machine_threads"));
  }
  opts.machine_threads = 4;
  BenchReport report("sharded_sweep");
  report.set_sweep_config(opts, {1}, 10, 1);
  EXPECT_EQ(report.root()["config"]["machine_threads"].as_int(), 4);
}

TEST(BenchReport, WriteAndReparseTinySweep) {
  const std::string path =
      testing::TempDir() + "/bench_json_test_artifact.json";
  BenchOptions opts;
  opts.seed = 7;
  {
    BenchReport report("tiny_sweep");
    report.set_sweep_config(opts, /*threads=*/{1, 2}, /*ops=*/20,
                            /*repeats=*/1);
    report.set("ns_per_cycle", Json(0.4));
    Table t({"threads", "latency_ns"});
    t.add_row(std::vector<std::string>{"1", "10.5"});
    t.add_row(std::vector<std::string>{"2", "20.5"});
    report.add_table("latency", t);
    for (int threads : {1, 2}) {
      Json cell = Json::object();
      cell.set("threads", Json(threads));
      cell.set("latency_ns", Json(threads * 10.5));
      cell.set("counters", metrics_to_json(sim::MetricsSnapshot{}));
      report.add_cell(std::move(cell));
    }
    ASSERT_EQ(report.cell_count(), 2u);
    ASSERT_TRUE(report.write(path));
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const Json root = Json::parse(buf.str());

  // sbq.bench/1 required keys.
  EXPECT_EQ(root["schema"].as_string(), BenchReport::kSchema);
  EXPECT_EQ(root["bench"].as_string(), "tiny_sweep");
  EXPECT_EQ(root["config"]["seed"].as_int(), 7);
  EXPECT_EQ(root["config"]["ops_per_thread"].as_int(), 20);
  EXPECT_EQ(root["config"]["repeats"].as_int(), 1);
  ASSERT_EQ(root["config"]["threads"].size(), 2u);
  EXPECT_EQ(root["config"]["threads"].at(1).as_int(), 2);
  EXPECT_DOUBLE_EQ(root["ns_per_cycle"].as_double(), 0.4);
  ASSERT_TRUE(root["tables"].is_object());
  EXPECT_EQ(root["tables"]["latency"]["columns"].size(), 2u);
  EXPECT_EQ(root["tables"]["latency"]["rows"].size(), 2u);
  ASSERT_EQ(root["cells"].size(), 2u);
  EXPECT_EQ(root["cells"].at(1)["threads"].as_int(), 2);
  EXPECT_DOUBLE_EQ(root["cells"].at(1)["latency_ns"].as_double(), 21.0);
  EXPECT_TRUE(root["cells"].at(0)["counters"]["htm"].is_object());

  std::remove(path.c_str());
}

TEST(BenchReport, WriteFailsOnBadPath) {
  BenchReport report("unwritable");
  EXPECT_FALSE(report.write("/nonexistent-dir/nope/artifact.json"));
}

}  // namespace
}  // namespace sbq
