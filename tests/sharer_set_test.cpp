// SharerSet + LegacyInvOrder tests.
//
// SharerSet is a bare bitmask whose iteration order is canonical ascending
// core id, so its differential reference is a std::set<int> (sorted order).
// LegacyInvOrder must reproduce libstdc++ unordered_set<int> iteration
// order *exactly* — it is the escape hatch replaying the pre-canonical Inv
// delivery order (see legacy_inv_order.hpp) — so its tests mirror every
// operation into a real std::unordered_set<int> and compare the full
// iteration order plus bucket count after each step. (The simulator
// requires libstdc++ anyway — LegacyInvOrder embeds
// std::__detail::_Prime_rehash_policy — so the reference container is by
// construction the one the seed used.)
//
// The last two tests script the §3.3 invalidation round end-to-end through
// the Machine: N sharers, one writer, exact Inv/Inv-Ack counts — once per
// inv-order mode, since the counts must not depend on delivery order.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <unordered_set>
#include <vector>

#include "sim/legacy_inv_order.hpp"
#include "sim/machine.hpp"
#include "sim/sharer_set.hpp"

namespace sbq::sim {
namespace {

template <typename Seq>
std::vector<int> order_of(const Seq& s) {
  std::vector<int> ids;
  for (int id : s) ids.push_back(id);
  return ids;
}

void expect_same(const SharerSet& s, const std::set<int>& ref, int step) {
  ASSERT_EQ(s.size(), ref.size()) << "step " << step;
  ASSERT_EQ(order_of(s), order_of(ref)) << "step " << step;
}

void expect_same(const LegacyInvOrder& s, const std::unordered_set<int>& ref,
                 int step) {
  ASSERT_EQ(s.size(), ref.size()) << "step " << step;
  ASSERT_EQ(s.bucket_count(), ref.bucket_count()) << "step " << step;
  ASSERT_EQ(order_of(s), order_of(ref)) << "step " << step;
}

TEST(SharerSet, BitmaskBasics) {
  SharerSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.contains(0));
  s.insert(3);
  s.insert(3);  // idempotent
  s.insert(0);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(0));
  EXPECT_FALSE(s.contains(1));
  EXPECT_EQ(s.erase(1), 0u);
  EXPECT_EQ(s.erase(3), 1u);
  EXPECT_FALSE(s.contains(3));
  EXPECT_EQ(s.size(), 1u);
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.contains(0));
}

TEST(SharerSet, IterationIsAscendingCoreIdOrder) {
  // Canonical Inv order: ascending core ids regardless of insertion order.
  // Walk past 64 ids so the multi-word bit scan and the SmallBuf heap
  // spill are both covered.
  SharerSet s;
  std::set<int> ref;
  for (int id : {7, 3, 100, 0, 64, 63, 5, 99}) {
    s.insert(id);
    ref.insert(id);
    expect_same(s, ref, id);
  }
  EXPECT_EQ(order_of(s), (std::vector<int>{0, 3, 5, 7, 63, 64, 99, 100}));
  for (int id : {3, 64, 0}) {
    EXPECT_EQ(s.erase(id), ref.erase(id));
    expect_same(s, ref, 1000 + id);
  }
}

TEST(SharerSet, DifferentialFuzzAgainstSortedSet) {
  SharerSet s;
  std::set<int> ref;
  std::uint64_t rng = 0x9E3779B97F4A7C15ULL;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int step = 0; step < 50000; ++step) {
    // Span several bitmask words so the cross-word iterator settles are hit.
    const int id = static_cast<int>(next() % 150);
    switch (next() % 8) {
      case 0:
      case 1:
      case 2:
      case 3:
        s.insert(id);
        ref.insert(id);
        break;
      case 4:
      case 5:
        ASSERT_EQ(s.erase(id), ref.erase(id)) << "step " << step;
        break;
      case 6:
        ASSERT_EQ(s.contains(id), ref.count(id) == 1) << "step " << step;
        break;
      case 7:
        if (next() % 32 == 0) {  // rare: lines do get fully invalidated
          s.clear();
          ref.clear();
        }
        break;
    }
    expect_same(s, ref, step);
  }
}

TEST(SharerSet, CopyAndMovePreserveContents) {
  // Directory lines live in a FlatMap, which moves them on rehash; the
  // SmallBuf-backed bitmask must survive copy/move in both the inline and
  // the heap-spilled regime.
  for (int count : {5, 130}) {
    SharerSet s;
    std::set<int> ref;
    for (int id = 0; id < count; ++id) {
      s.insert(id * 3 % count);  // non-monotonic insertion order
      ref.insert(id * 3 % count);
    }
    SharerSet copy = s;
    expect_same(copy, ref, count);
    SharerSet moved = std::move(s);
    expect_same(moved, ref, count);
    // The moved-to set must stay fully functional.
    moved.insert(count + 1);
    ref.insert(count + 1);
    expect_same(moved, ref, count + 1);
  }
}

TEST(LegacyInvOrder, IterationOrderMatchesUnorderedSetAscendingInserts) {
  // The common §3.3 shape: sharers accumulate in core-id order, then get
  // invalidated. Walk well past the first two bucket growths (13, 29) so
  // the rehash transcription and the SmallBuf heap spill are both covered.
  LegacyInvOrder s;
  std::unordered_set<int> ref;
  for (int id = 0; id < 60; ++id) {
    s.insert(id);
    ref.insert(id);
    expect_same(s, ref, id);
  }
  for (int id = 0; id < 60; id += 2) {
    EXPECT_EQ(s.erase(id), ref.erase(id));
    expect_same(s, ref, 1000 + id);
  }
  for (int id = 0; id < 60; id += 2) {
    s.insert(id);
    ref.insert(id);
    expect_same(s, ref, 2000 + id);
  }
}

TEST(LegacyInvOrder, DifferentialFuzzAgainstUnorderedSet) {
  LegacyInvOrder s;
  std::unordered_set<int> ref;
  std::uint64_t rng = 0x9E3779B97F4A7C15ULL;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int step = 0; step < 50000; ++step) {
    const int id = static_cast<int>(next() % 44);  // spans the inline bounds
    switch (next() % 8) {
      case 0:
      case 1:
      case 2:
      case 3:
        s.insert(id);
        ref.insert(id);
        break;
      case 4:
      case 5:
        ASSERT_EQ(s.erase(id), ref.erase(id)) << "step " << step;
        break;
      case 6:
        ASSERT_EQ(s.contains(id), ref.count(id) == 1) << "step " << step;
        break;
      case 7:
        if (next() % 32 == 0) {  // rare: lines do get fully invalidated
          s.clear();
          ref.clear();
        }
        break;
    }
    expect_same(s, ref, step);
  }
}

void run_section33_round(bool canonical) {
  // §3.3, scripted: cores 1..3 read line x (three GetS), then core 0
  // writes it (one GetM). The directory must invalidate every sharer —
  // exactly three Inv received, exactly three Inv-Ack collected by the
  // requester — and end with core 0 as exclusive owner. The *counts* are
  // order-independent, so both inv-order modes must produce them.
  MachineConfig cfg;
  cfg.cores = 4;
  cfg.canonical_inv_order = canonical;
  Machine m(cfg);
  const Addr x = m.alloc();
  m.directory().poke(x, 7);
  m.spawn([](Machine& m, Addr x) -> Task<void> {
    co_await m.core(1).load(x);
    co_await m.core(2).load(x);
    co_await m.core(3).load(x);
    co_await m.core(0).store(x, 8);
  }(m, x));
  m.run();
  ASSERT_NE(m.stats(), nullptr);
  const ProtocolCounters& p = m.stats()->protocol();
  EXPECT_EQ(p.gets, 3u);
  EXPECT_EQ(p.getm, 1u);
  EXPECT_EQ(p.inv, 3u);
  EXPECT_EQ(p.inv_ack, 3u);
  EXPECT_EQ(p.fwd_gets, 0u);
  EXPECT_EQ(p.fwd_getm, 0u);
  // Each sharer received exactly one Inv; the writer collected every ack.
  for (CoreId c = 1; c < 4; ++c) {
    EXPECT_EQ(m.stats()->core_protocol(c).inv, 1u);
  }
  EXPECT_EQ(m.stats()->core_protocol(0).inv_ack, 3u);
  EXPECT_EQ(m.directory().line_state(x), Directory::LineState::kModified);
  EXPECT_EQ(m.directory().line_owner(x), 0);
  EXPECT_EQ(m.directory().sharer_count(x), 0u);
  EXPECT_EQ(m.core(0).line_state(x), Core::LineState::kModified);
  for (CoreId c = 1; c < 4; ++c) {
    EXPECT_EQ(m.core(c).line_state(x), Core::LineState::kInvalid);
  }
}

TEST(SharerSet, Section33InvalidationRoundHasExactCounts) {
  run_section33_round(/*canonical=*/true);
}

TEST(LegacyInvOrder, Section33InvalidationRoundHasExactCounts) {
  run_section33_round(/*canonical=*/false);
}

}  // namespace
}  // namespace sbq::sim
