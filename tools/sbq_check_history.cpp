// Linearizability verification over a recorded op trace (docs/replay.md).
//
// Decodes a trace file (sim- or native-recorded), rebuilds the operation
// history, and runs the HSV four-violation check from src/verify plus a
// value-conservation summary. The checker assumes unique enqueued values;
// sim mixed-workload traces with a prefill phase repeat values between the
// phases by construction, so those are refused rather than mis-reported.
//
// Exit code: 0 = history linearizable, 1 = violations found, 2 = decode or
// usage error, 3 = unsupported trace shape (non-unique values).
#include <iostream>
#include <string>

#include "replay/op_trace.hpp"
#include "verify/history_checker.hpp"

int main(int argc, char** argv) {
  bool quiet = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quiet") {
      quiet = true;
    } else if (!a.empty() && a[0] != '-' && path.empty()) {
      path = a;
    } else {
      std::cerr << "usage: sbq_check_history [--quiet] TRACE_FILE\n";
      return 2;
    }
  }
  if (path.empty()) {
    std::cerr << "usage: sbq_check_history [--quiet] TRACE_FILE\n";
    return 2;
  }

  sbq::replay::OpTrace trace;
  if (!sbq::replay::read_op_trace_file(path, trace)) {
    std::cerr << "sbq_check_history: cannot decode " << path
              << " (truncated, corrupted, or not an op trace)\n";
    return 2;
  }
  if (trace.source == sbq::replay::TraceSource::kSim && trace.workload == 2 &&
      trace.prefill > 0) {
    std::cerr << "sbq_check_history: sim mixed-workload traces with prefill "
                 "repeat values across phases; the checker needs unique "
                 "values\n";
    return 3;
  }

  sbq::histcheck::History history;
  std::uint64_t enqueues = 0, dequeues = 0, null_dequeues = 0;
  for (const sbq::replay::OpRecord& rec : trace.records) {
    if (rec.op == sbq::replay::kOpEnqueue) {
      history.record_enq(rec.invoke_seq, rec.response_seq, rec.value);
      ++enqueues;
    } else {
      history.record_deq(rec.invoke_seq, rec.response_seq, rec.result);
      if (rec.result != 0) {
        ++dequeues;
      } else {
        ++null_dequeues;
      }
    }
  }

  const auto violations = history.check();
  if (!quiet) {
    std::cout << "trace: " << path << "\n"
              << "  queue: " << trace.queue << "  source: "
              << (trace.source == sbq::replay::TraceSource::kSim ? "sim"
                                                                 : "native")
              << "  records: " << trace.records.size() << "\n"
              << "  enqueues: " << enqueues << "  dequeues: " << dequeues
              << "  null dequeues: " << null_dequeues << "\n"
              << "  conservation: "
              << (enqueues >= dequeues ? enqueues - dequeues : 0)
              << " values left in queue\n";
  }
  if (enqueues < dequeues && !quiet) {
    std::cout << "  WARNING: more successful dequeues than enqueues\n";
  }
  if (violations.empty()) {
    if (!quiet) std::cout << "history is linearizable (0 violations)\n";
    return 0;
  }
  std::cout << violations.size() << " violation(s):\n";
  for (const auto& v : violations) {
    std::cout << "  " << v.kind << ": " << v.detail << "\n";
  }
  return 1;
}
