// Differential divergence bisector CLI (docs/replay.md).
//
// Runs ONE workload under TWO machine configurations and reports the first
// interconnect message where their schedules diverge, with DebugRing
// context on both sides. The workload is either a synthetic sweep cell
// (--queue/--workload/--threads/--ops) or a recorded op trace
// (--replay-ops=FILE). Per-side config deltas use --a-*/--b-* prefixed
// flags; the canonical-vs-legacy Inv order pair is the original target:
//
//   sbq_divergence --queue SBQ-HTM --workload mixed --threads 4 --ops 40 \
//       --a-inv-order canonical --b-inv-order legacy
//
// Exit code: 0 = identical schedules, 1 = divergence found (report on
// stdout), 2 = usage/input error.
#include <cstring>
#include <iostream>
#include <string>

#include "replay/divergence.hpp"
#include "replay/op_trace.hpp"
#include "replay/sim_replay.hpp"
#include "sim_queue_bench_util.hpp"

namespace {

using namespace sbq;

struct SideConfig {
  bool legacy_inv = false;
  bool link_model = false;
  double fault_rate = 0.0;
  std::uint64_t fault_seed = 1;
  std::string cas_policy;
};

struct Options {
  std::string queue = "SBQ-HTM";
  std::string workload = "mixed";
  int threads = 4;
  std::uint64_t ops = 40;
  std::uint64_t prefill = 64;
  std::uint64_t seed = 1;
  std::uint64_t window = 1024;
  std::string replay_path;
  SideConfig a, b;
};

[[noreturn]] void usage(const char* msg) {
  if (msg != nullptr) std::cerr << "sbq_divergence: " << msg << "\n";
  std::cerr << "usage: sbq_divergence [--queue NAME] [--workload prod|cons|mixed]\n"
               "           [--threads N] [--ops N] [--prefill N] [--seed S]\n"
               "           [--window N] [--replay-ops FILE]\n"
               "           [--{a,b}-inv-order canonical|legacy]\n"
               "           [--{a,b}-interconnect flat|link]\n"
               "           [--{a,b}-fault-rate F] [--{a,b}-fault-seed S]\n"
               "           [--{a,b}-cas-policy NAME]\n";
  std::exit(2);
}

bool parse_side(SideConfig& side, const std::string& key,
                const std::string& value) {
  if (key == "inv-order") {
    if (value == "canonical") {
      side.legacy_inv = false;
    } else if (value == "legacy") {
      side.legacy_inv = true;
    } else {
      usage("inv-order needs canonical or legacy");
    }
    return true;
  }
  if (key == "interconnect") {
    if (value == "flat") {
      side.link_model = false;
    } else if (value == "link") {
      side.link_model = true;
    } else {
      usage("interconnect needs flat or link");
    }
    return true;
  }
  if (key == "fault-rate") {
    side.fault_rate = std::stod(value);
    return true;
  }
  if (key == "fault-seed") {
    side.fault_seed = std::stoull(value);
    return true;
  }
  if (key == "cas-policy") {
    side.cas_policy = value;
    return true;
  }
  return false;
}

Options parse(int argc, char** argv) {
  Options o;
  auto next = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage("missing value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--queue") {
      o.queue = next(i);
    } else if (a == "--workload") {
      o.workload = next(i);
    } else if (a == "--threads") {
      o.threads = std::stoi(next(i));
    } else if (a == "--ops") {
      o.ops = std::stoull(next(i));
    } else if (a == "--prefill") {
      o.prefill = std::stoull(next(i));
    } else if (a == "--seed") {
      o.seed = std::stoull(next(i));
    } else if (a == "--window") {
      o.window = std::stoull(next(i));
    } else if (a == "--replay-ops") {
      o.replay_path = next(i);
    } else if (a.rfind("--a-", 0) == 0) {
      if (!parse_side(o.a, a.substr(4), next(i))) usage("unknown option");
    } else if (a.rfind("--b-", 0) == 0) {
      if (!parse_side(o.b, a.substr(4), next(i))) usage("unknown option");
    } else {
      usage(("unknown option " + a).c_str());
    }
  }
  if (o.threads < 1 || o.threads > 64) usage("--threads out of range");
  return o;
}

sim::MachineConfig side_machine_config(const Options& o, const SideConfig& s,
                                       int cores) {
  sim::MachineConfig mcfg;
  mcfg.cores = cores;
  mcfg.sockets = 2;
  mcfg.machine_threads = 1;  // the bisector needs the single global order
  mcfg.collect_stats = false;
  mcfg.canonical_inv_order = !s.legacy_inv;
  mcfg.interconnect_model = s.link_model ? sim::InterconnectModel::kLink
                                         : sim::InterconnectModel::kFlat;
  if (s.fault_rate > 0.0) {
    // Same 25/50/25 capacity/interrupt/spurious split as the drivers'
    // --fault-rate (bench::apply_fault_options).
    sim::FaultPlan& plan = mcfg.fault_plan;
    plan.enabled = true;
    plan.seed = s.fault_seed;
    plan.capacity_rate = s.fault_rate * 0.25;
    plan.interrupt_rate = s.fault_rate * 0.50;
    plan.spurious_rate = s.fault_rate * 0.25;
  }
  if (!s.cas_policy.empty()) {
    if (!sbq::contention_policy_from_name(s.cas_policy.c_str(),
                                          mcfg.cas_policy.kind)) {
      usage("unknown --cas-policy");
    }
  }
  return mcfg;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);

  bench::WorkloadSpec spec;
  replay::OpTrace trace;
  const bool from_trace = !o.replay_path.empty();
  bench::QueueKind kind;
  if (from_trace) {
    if (!replay::read_op_trace_file(o.replay_path, trace)) {
      std::cerr << "sbq_divergence: cannot decode " << o.replay_path << "\n";
      return 2;
    }
    try {
      kind = bench::queue_kind_from_name(trace.queue);
    } catch (const std::exception&) {
      std::cerr << "sbq_divergence: trace names unknown queue '" << trace.queue
                << "'\n";
      return 2;
    }
    spec = bench::spec_from_trace(trace);
  } else {
    try {
      kind = bench::queue_kind_from_name(o.queue);
    } catch (const std::exception&) {
      usage("unknown --queue");
    }
    if (o.workload == "prod") {
      spec.kind = bench::Workload::kProducerOnly;
    } else if (o.workload == "cons") {
      spec.kind = bench::Workload::kConsumerOnly;
    } else if (o.workload == "mixed") {
      spec.kind = bench::Workload::kMixed;
    } else {
      usage("--workload needs prod, cons or mixed");
    }
    spec.producers = o.threads;
    spec.consumers = o.threads;
    spec.ops_per_thread = o.ops;
    spec.prefill = o.prefill;
    spec.seed = o.seed;
  }
  const int cores = bench::replay_min_cores(spec);

  auto make_runner = [&](const SideConfig& side) {
    const sim::MachineConfig mcfg = side_machine_config(o, side, cores);
    return [&, mcfg](sim::Interconnect::SendObserverFn fn, void* ctx) {
      sim::Machine m(mcfg);
      m.interconnect().set_send_observer(fn, ctx);
      bench::with_queue(kind, m, spec, [&](auto& q, int offset) {
        if (from_trace) {
          replay::replay_trace(m, q, trace, offset);
        } else {
          bench::run_spec(m, q, spec, offset);
        }
        return 0;
      });
    };
  };

  const replay::DivergenceReport report = replay::find_divergence(
      make_runner(o.a), make_runner(o.b), o.window);
  std::cout << replay::format_divergence(report);
  return report.diverged ? 1 : 0;
}
